"""A small define-by-run autograd engine on numpy arrays.

The paper implements its throughput estimator in PyTorch; this module
provides the subset of an autograd tensor library the estimator needs,
built from scratch on numpy: broadcasting arithmetic, matmul, reduction
ops, shape ops and elementwise nonlinearities, each with a hand-derived
backward.  Convolution and pooling live in
:mod:`repro.nn.functional`.

Design notes
------------
* ``Tensor`` wraps a float64/float32 ndarray.  Ops record parent
  tensors and a backward closure; ``backward()`` runs reverse
  topological order.
* Gradients accumulate into ``.grad`` (ndarray, same shape as data).
* A global :func:`no_grad` context disables graph construction, which
  matters when the MCTS issues hundreds of estimator queries.
* Broadcasting backward reduces gradients back to the parent's shape
  via :func:`_sum_to_shape`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "get_default_dtype", "set_default_dtype"]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.float32


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float32 by default)."""
    return np.dtype(_DEFAULT_DTYPE)


def set_default_dtype(dtype) -> None:
    """Set the dtype for new tensors.

    float32 is the training default (2x faster on memory-bound numpy
    kernels); tests switch to float64 for tight finite-difference
    gradient checks.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported dtype {dtype}; use float32 or float64")
    _DEFAULT_DTYPE = dtype


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables autograd graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


ArrayLike = Union[np.ndarray, float, int, Sequence]


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray plus an autograd tape entry.

    Parameters
    ----------
    data:
        Array content (copied only if conversion is needed).
    requires_grad:
        Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item()

    def detach(self) -> "Tensor":
        """A view of the same data outside the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, recording the tape only when enabled."""
        requires = _GRAD_ENABLED and any(parent.requires_grad for parent in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor {self.data.shape}"
                )

        # Reverse topological order over the tape.
        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_sum_to_shape(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_sum_to_shape(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _sum_to_shape(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError(
                f"matmul supports 2-D tensors, got {self.ndim}-D @ {other.ndim}-D"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def max(self) -> "Tensor":
        """Global maximum (gradient flows to the first argmax element)."""
        out_data = np.asarray(self.data.max())
        flat_index = int(self.data.argmax())

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full.reshape(-1)[flat_index] = float(grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten_batch(self) -> "Tensor":
        """Collapse all non-batch dimensions: ``(N, ...) -> (N, F)``."""
        batch = self.shape[0]
        return self.reshape(batch, int(self.data.size // batch))

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes or tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian Error Linear Unit (tanh approximation).

        The paper swaps the estimator's ReLUs for GELU; we use the
        widely adopted tanh form, whose derivative is smooth and cheap.
        """
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        if _GRAD_ENABLED and self.requires_grad:
            inner = c * (x + 0.044715 * x**3)
        else:
            # Inference fast path: numpy routes float powers through
            # libm pow, ~50x slower than two multiplies, and this is
            # the estimator forward's single hottest line.  The taped
            # (training) branch keeps the pow form so trained weights
            # stay bitwise-reproducible against prior checkpoints; the
            # two forms agree to ~1 ulp.
            inner = c * (x + 0.044715 * (x * x * x))
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            sech2 = 1.0 - tanh_inner**2
            d_inner = c * (1.0 + 3 * 0.044715 * x**2)
            derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(grad * derivative)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5


def _raise_item() -> float:
    raise ValueError("item() requires a one-element tensor")
