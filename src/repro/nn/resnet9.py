"""ResNet9-style backbone for the throughput estimator.

The paper describes "a lightweight ResNet9-based CNN performance
estimator with only 20,044 trainable parameters" using GELU
activations and a 3-neuron linear output (one expected normalized
throughput per computing component, no output activation).

This is that network, scaled to the masked embedding tensor's input
geometry (3 device channels x max_layers x num_models).  The default
widths (12, 17, 21 channels; 46 hidden units) were chosen so the
trainable parameter count is exactly 20,044.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    Sequential,
)
from .tensor import Tensor

__all__ = ["ConvBlock", "ResidualBlock", "ResNet9"]


class ConvBlock(Module):
    """conv3x3 -> BatchNorm -> GELU (-> optional max-pool)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        pool: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(
            in_channels, out_channels, kernel_size=3, padding=1, rng=rng
        )
        self.norm = BatchNorm2d(out_channels)
        self.act = GELU()
        self.pool = MaxPool2d(2) if pool else None

    def forward(self, x: Tensor) -> Tensor:
        out = self.act(self.norm(self.conv(x)))
        if self.pool is not None:
            out = self.pool(out)
        return out


class ResidualBlock(Module):
    """Two ConvBlocks with an identity skip (channels preserved)."""

    def __init__(
        self, channels: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        self.block1 = ConvBlock(channels, channels, rng=rng)
        self.block2 = ConvBlock(channels, channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.block2(self.block1(x)) + x


class ResNet9(Module):
    """The estimator backbone: 2 residual stages + linear regression head.

    Parameters
    ----------
    in_channels:
        Input channels -- one per computing component (3 on HiKey970).
    out_features:
        Output neurons -- one per computing component; no output
        activation because the task is regression (paper IV-B).
    widths:
        Channel widths of the three conv stages.
    hidden:
        Width of the penultimate fully connected layer.
    rng:
        Generator for weight initialization (reproducibility).
    """

    def __init__(
        self,
        in_channels: int = 3,
        out_features: int = 3,
        widths: tuple = (12, 17, 21),
        hidden: int = 46,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        c1, c2, c3 = widths
        self.stem = ConvBlock(in_channels, c1, rng=rng)
        self.stage1 = ConvBlock(c1, c2, pool=True, rng=rng)
        self.res1 = ResidualBlock(c2, rng=rng)
        self.stage2 = ConvBlock(c2, c3, pool=True, rng=rng)
        self.res2 = ResidualBlock(c3, rng=rng)
        self.head = Sequential(
            GlobalAvgPool2d(),
            Flatten(),
            Linear(c3, hidden, rng=rng),
            GELU(),
            Linear(hidden, out_features, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stage1(out)
        out = self.res1(out)
        out = self.stage2(out)
        out = self.res2(out)
        return self.head(out)
