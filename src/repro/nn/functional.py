"""Convolution, pooling and loss functionals with hand-derived backwards.

These are the structured ops the autograd tape cannot compose from
arithmetic primitives efficiently.  Convolution uses im2col/col2im with
numpy stride tricks; inputs are NCHW.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "linear",
    "linear_rowwise",
    "batch_norm2d",
    "l1_loss",
    "mse_loss",
    "pad2d",
]


def _as_pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        first, second = value
        return int(first), int(second)
    return int(value), int(value)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: Tuple[int, int]
) -> Tuple[np.ndarray, int, int]:
    """Expand padded NCHW input into column form.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    stride_n, stride_c, stride_h, stride_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(stride_n, stride_c, stride_h, stride_w, stride_h * sh, stride_w * sw),
        writeable=False,
    )
    cols = windows.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to padded input positions."""
    n, c, h, w = x_shape
    sh, sw = stride
    grad_x = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for row in range(kh):
        row_end = row + sh * out_h
        for col in range(kw):
            col_end = col + sw * out_w
            grad_x[:, :, row:row_end:sh, col:col_end:sw] += cols[:, :, row, col]
    return grad_x


def pad2d(x: Tensor, padding: Tuple[int, int]) -> Tensor:
    """Zero-pad the two trailing (spatial) dimensions."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[:, :, ph : grad.shape[2] - ph, pw : grad.shape[3] - pw])

    return Tensor._make(out_data, (x,), backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution (NCHW x OIHW -> NCHW)."""
    stride_pair = _as_pair(stride)
    padding_pair = _as_pair(padding)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D OIHW weight, got shape {weight.shape}")
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels, weight expects {in_channels}"
        )
    x_padded = pad2d(x, padding_pair)
    cols, out_h, out_w = _im2col(x_padded.data, kh, kw, stride_pair)
    n = x.shape[0]
    w_mat = weight.data.reshape(out_channels, -1)
    # Per-sample batched GEMM: (O, F) @ (N, F, P) -> (N, O, P); the
    # shared weight broadcasts, so each sample's product is independent.
    out = np.matmul(w_mat, cols)
    out_data = out.reshape(n, out_channels, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x_padded, weight) if bias is None else (x_padded, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, out_channels, out_h * out_w)
        if weight.requires_grad:
            grad_w = np.matmul(grad_mat, cols.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x_padded.requires_grad:
            grad_cols = np.matmul(w_mat.T, grad_mat)  # (F, O) @ (N, O, P)
            grad_x = _col2im(
                grad_cols, x_padded.shape, kh, kw, stride_pair, out_h, out_w
            )
            x_padded._accumulate(grad_x)

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Max pooling over NCHW spatial dims."""
    kh, kw = _as_pair(kernel_size)
    stride_pair = _as_pair(stride) if stride is not None else (kh, kw)
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride_pair)
    n, c = x.shape[0], x.shape[1]
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).reshape(
        n, c, out_h, out_w
    )

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(
            grad_cols,
            argmax[:, :, None, :],
            grad.reshape(n, c, 1, out_h * out_w),
            axis=2,
        )
        grad_x = _col2im(
            grad_cols.reshape(n, c * kh * kw, out_h * out_w),
            x.shape,
            kh,
            kw,
            stride_pair,
            out_h,
            out_w,
        )
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Average pooling over NCHW spatial dims."""
    kh, kw = _as_pair(kernel_size)
    stride_pair = _as_pair(stride) if stride is not None else (kh, kw)
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride_pair)
    n, c = x.shape[0], x.shape[1]
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        spread = np.broadcast_to(
            grad.reshape(n, c, 1, out_h * out_w) / (kh * kw),
            (n, c, kh * kw, out_h * out_w),
        )
        grad_x = _col2im(
            spread.reshape(n, c * kh * kw, out_h * out_w),
            x.shape,
            kh,
            kw,
            stride_pair,
            out_h,
            out_w,
        )
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Collapse NCHW spatial dims to 1x1 by averaging."""
    n, c, h, w = x.shape
    out_data = x.data.mean(axis=(2, 3), keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.broadcast_to(grad / (h * w), x.shape).copy())

    return Tensor._make(out_data, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D inputs ``(N, in)``."""
    # repro: lint-ignore[RPR004] -- training-path linear; the eval path
    # routes through linear_rowwise instead
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def linear_rowwise(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """:func:`linear` computed sample-by-sample: batch-composition invariant.

    A single ``(N, K) @ (K, M)`` GEMM lets BLAS pick blocking by the
    batch size ``N``, so row ``i`` of the result can differ (in the
    last float32 ulps) depending on which other rows share the batch.
    This variant runs one ``(1, K) @ (K, M)`` product per sample via
    broadcast matmul, making each row bitwise identical to a
    standalone single-sample call no matter how requests are pooled —
    the property the scheduling service's cross-request batching
    relies on to stay result-identical to per-request evaluation.
    """
    if x.ndim != 2:
        raise ValueError(f"linear_rowwise expects a 2-D input, got shape {x.shape}")
    out_data = np.matmul(x.data[:, None, :], weight.data.T)[:, 0, :]
    if bias is not None:
        out_data = out_data + bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ weight.data)
        if weight.requires_grad:
            weight._accumulate(grad.T @ x.data)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward)


def batch_norm2d(  # repro: lint-ignore[RPR004] -- training-mode batch statistics are cross-sample by definition
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    eps: float = 1e-5,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch normalization over NCHW channels.

    Returns ``(output, batch_mean, batch_var)``; the caller maintains
    running statistics.  Fusing forward and backward avoids the ~20
    broadcasting primitives the composed formulation would tape.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm2d expects NCHW input, got shape {x.shape}")
    axes = (0, 2, 3)
    count = x.shape[0] * x.shape[2] * x.shape[3]
    mean = x.data.mean(axis=axes, keepdims=True)
    centered = x.data - mean
    var = (centered**2).mean(axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    gamma = weight.data.reshape(1, -1, 1, 1)
    out_data = normalized * gamma + bias.data.reshape(1, -1, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate((grad * normalized).sum(axis=axes))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            grad_norm = grad * gamma
            # Standard BN input gradient:
            # dx = inv_std/N * (N*g - sum(g) - x_hat * sum(g*x_hat))
            sum_grad = grad_norm.sum(axis=axes, keepdims=True)
            sum_grad_norm = (grad_norm * normalized).sum(axis=axes, keepdims=True)
            grad_x = (
                inv_std / count * (count * grad_norm - sum_grad - normalized * sum_grad_norm)
            )
            x._accumulate(grad_x)

    out = Tensor._make(out_data, (x, weight, bias), backward)
    return out, mean.reshape(-1), var.reshape(-1)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (the paper's training criterion)."""
    _check_same_shape(prediction, target)
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (the paper's rejected, "too aggressive" L2)."""
    _check_same_shape(prediction, target)
    return ((prediction - target) ** 2).mean()


def _check_same_shape(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
