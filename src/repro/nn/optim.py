"""Optimizers: SGD with momentum and Adam.

The paper trains the estimator for 100 epochs in under a minute; Adam
with default moments is the workhorse here, SGD exists for ablations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: holds parameters, applies updates, clears grads."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(param.data) for param in self.parameters]
        self._second_moment = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
