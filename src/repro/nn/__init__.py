"""A from-scratch numpy deep-learning framework.

Stand-in for the paper's PyTorch dependency: autograd tensors,
conv/pool/linear layers, BatchNorm, GELU, Adam/SGD, L1/L2 losses, data
loaders and the ResNet9 estimator backbone.
"""

from . import functional
from .data import DataLoader, TensorDataset
from .inference import InferencePlan, PlanCompileError, compile_resnet9
from .functional import (
    avg_pool2d,
    conv2d,
    global_avg_pool2d,
    l1_loss,
    linear,
    max_pool2d,
    mse_loss,
    pad2d,
)
from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from .optim import SGD, Adam, Optimizer
from .resnet9 import ConvBlock, ResidualBlock, ResNet9
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "BatchNorm2d",
    "Conv2d",
    "ConvBlock",
    "DataLoader",
    "Flatten",
    "GELU",
    "GlobalAvgPool2d",
    "InferencePlan",
    "Linear",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "PlanCompileError",
    "ReLU",
    "ResNet9",
    "ResidualBlock",
    "SGD",
    "Sequential",
    "Tensor",
    "TensorDataset",
    "avg_pool2d",
    "compile_resnet9",
    "conv2d",
    "functional",
    "global_avg_pool2d",
    "is_grad_enabled",
    "l1_loss",
    "linear",
    "max_pool2d",
    "mse_loss",
    "no_grad",
    "pad2d",
]
