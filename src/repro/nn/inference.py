"""Ahead-of-time compiled inference for the ResNet9 estimator backbone.

Every scheduling decision funnels ~500 estimator queries through one
eval-mode forward pass, yet the autograd :class:`~repro.nn.tensor.Tensor`
interpreter pays training-time overheads on each of them: per-op Tensor
wrapping, a fresh allocation per intermediate, an ``ascontiguousarray``
im2col copy per convolution and an unfolded eval-mode BatchNorm (six
broadcasting ops).  This module removes all of that by *compiling* the
network once:

:func:`compile_resnet9` walks the module tree (``ConvBlock`` /
``ResidualBlock`` / head ``Sequential``) and captures it into an
:class:`InferencePlan` — a flat list of raw-numpy kernel steps with

* **BatchNorm constant-folded** into the preceding conv's weights and
  bias (eval mode uses frozen running statistics, so the affine
  normalization is absorbed ahead of time);
* **conv + GELU fused** into one step (the activation runs in place on
  the conv's output buffer — no intermediate tensor materializes);
* **padding folded into the gather**: inputs live inside persistent
  zero-bordered NHWC buffers, so there is no per-call ``np.pad``;
* **preallocated scratch arenas**, one per (batch size, geometry):
  every matmul and ufunc writes ``out=`` into arena buffers that are
  reused across calls — the steady-state query path performs no numpy
  allocation beyond the returned result row block.

The convolution kernel itself is a *band-split GEMM*: the padded NHWC
activation is gathered once into width-windows of ``3*C`` contiguous
values (a third of a classic ``9*C`` im2col copy), and the three kernel
rows become three ``(H*W, 3C) @ (3C, O)`` per-sample matmuls that are
summed.  Per-sample matmuls matter: like the interpreter's broadcast
conv and :func:`~repro.nn.functional.linear_rowwise`, every kernel here
prices each sample independently, so row ``i`` of a compiled batch is
**bitwise identical regardless of batch composition** — the guarantee
the scheduling service's cross-request evaluation pooling is built on.

Compiled outputs are not bit-identical to the interpreter (folding and
band-splitting re-associate float sums) but agree within tight
tolerance (rtol ``1e-5`` in float32, far tighter in float64) — close
enough that pinned-seed MCTS searches select identical mappings; the
equivalence suite in ``tests/test_nn_inference.py`` and the gate in
``benchmarks/test_perf_inference.py`` pin both properties.

A plan snapshots the weights at compile time.  The estimator owns the
compile-on-first-eval / invalidate-on-weight-update lifecycle via
:attr:`~repro.nn.layers.Module.version` (bumped by ``train()`` and
``load_state_dict()``); code that mutates ``Tensor.data`` in place
outside those paths must call
:meth:`~repro.estimator.model.ThroughputEstimator.invalidate_plan`.
See ``docs/performance.md`` for the operational guide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .layers import (
    BatchNorm2d,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    Sequential,
)
from .resnet9 import ConvBlock, ResidualBlock

__all__ = [
    "PlanCompileError",
    "PlanExecutionError",
    "InferencePlan",
    "compile_resnet9",
]


class PlanCompileError(ValueError):
    """The module tree cannot be captured into an inference plan."""


class PlanExecutionError(RuntimeError):
    """A compiled plan failed at serve time (after compiling cleanly).

    Unlike :class:`PlanCompileError` — which the estimator heals by
    permanently falling back to the interpreter — an execution fault is
    transient serve-path breakage (a missing arena, or an injected
    fault from :mod:`repro.resilience`); the degradation ladder retries
    the decision on the interpreter tier instead of abandoning the
    compiled backend forever.
    """


@dataclass(frozen=True)
class ConvStep:
    """One folded conv3x3(+BN)+GELU(+pool) kernel step.

    ``bands`` are the three kernel rows as ``(3*C, O)`` matrices in
    width-window order (``j = dx * C + c``), already scaled by the
    folded BatchNorm; ``bias`` absorbs the conv bias, the running mean
    and the BatchNorm shift.  ``residual_from`` names the padded
    buffer whose interior is added to this step's activation before it
    is staged (the ResidualBlock skip), by conv index.
    """

    in_channels: int
    out_channels: int
    bands: Tuple[np.ndarray, np.ndarray, np.ndarray]
    bias: np.ndarray
    pool: bool
    residual_from: Optional[int] = None


@dataclass(frozen=True)
class HeadStep:
    """One regression-head step: ``"linear"`` (rowwise) or ``"gelu"``."""

    kind: str
    weight: Optional[np.ndarray] = None  # (out, in), rowwise via .T view
    bias: Optional[np.ndarray] = None


def _fold_conv_block(block: ConvBlock, dtype: np.dtype) -> Tuple[Tuple, np.ndarray]:
    """BN-fold one ConvBlock into band matrices + bias."""
    conv = block.conv
    norm = block.norm
    if conv.kernel_size != 3 or conv.stride != 1 or conv.padding != 1:
        raise PlanCompileError(
            "only 3x3 / stride-1 / padding-1 convolutions compile "
            f"(got k={conv.kernel_size}, s={conv.stride}, p={conv.padding})"
        )
    if not isinstance(norm, BatchNorm2d):
        raise PlanCompileError(f"expected BatchNorm2d, got {type(norm).__name__}")
    if not isinstance(block.act, GELU):
        raise PlanCompileError(f"expected GELU activation, got {type(block.act).__name__}")
    out_channels, in_channels = conv.out_channels, conv.in_channels
    # Eval-mode BN is an affine map from frozen running statistics;
    # mirror the interpreter's float arithmetic (stats are cast to the
    # parameter dtype before (var + eps) ** 0.5, exactly as Tensor
    # construction would cast them).
    gamma = np.asarray(norm.weight.data, dtype=dtype)
    beta = np.asarray(norm.bias.data, dtype=dtype)
    mean = np.asarray(norm.running_mean, dtype=dtype)
    var = np.asarray(norm.running_var, dtype=dtype)
    scale = gamma / (var + dtype.type(norm.eps)) ** 0.5
    weight = np.asarray(conv.weight.data, dtype=dtype) * scale[:, None, None, None]
    conv_bias = (
        np.asarray(conv.bias.data, dtype=dtype)
        if conv.bias is not None
        else np.zeros(out_channels, dtype=dtype)
    )
    bias = (conv_bias - mean) * scale + beta
    # Kernel row dy as a (3C, O) matrix whose K axis matches the
    # width-window gather layout: j = dx * C + c.
    bands = tuple(
        np.ascontiguousarray(
            weight[:, :, dy, :].transpose(2, 1, 0).reshape(3 * in_channels, out_channels)
        )
        for dy in range(3)
    )
    return bands, np.ascontiguousarray(bias)


def compile_resnet9(network: Module) -> "InferencePlan":
    """Capture an eval-mode ResNet9-style network into an :class:`InferencePlan`.

    Walks the module tree in registration order; any ``ConvBlock`` /
    ``ResidualBlock`` trunk followed by a
    ``GlobalAvgPool2d -> Flatten -> (Linear | GELU)...`` head compiles
    (the walk is structural, so custom widths, depths and reserved
    embedding geometries all work).  Raises :class:`PlanCompileError`
    for anything else — callers fall back to the interpreter.
    """
    parameters = network.parameters()
    if not parameters:
        raise PlanCompileError("network has no parameters to compile")
    dtype = np.dtype(parameters[0].data.dtype)
    if any(np.dtype(param.data.dtype) != dtype for param in parameters):
        raise PlanCompileError("mixed parameter dtypes cannot compile")

    convs: List[ConvStep] = []
    head: List[HeadStep] = []
    state = {"gap": False, "features": 0}

    def add_conv(block: ConvBlock, residual_from: Optional[int] = None) -> None:
        if state["gap"]:
            raise PlanCompileError("convolution after global pooling")
        pool = block.pool
        if pool is not None:
            if not isinstance(pool, MaxPool2d):
                raise PlanCompileError(f"expected MaxPool2d, got {type(pool).__name__}")
            if pool.kernel_size != 2 or pool.stride not in (None, 2):
                raise PlanCompileError("only 2x2 / stride-2 max pooling compiles")
        if convs and block.conv.in_channels != convs[-1].out_channels:
            raise PlanCompileError(
                f"conv expects {block.conv.in_channels} channels, previous "
                f"step produces {convs[-1].out_channels}"
            )
        bands, bias = _fold_conv_block(block, dtype)
        convs.append(
            ConvStep(
                in_channels=block.conv.in_channels,
                out_channels=block.conv.out_channels,
                bands=bands,
                bias=bias,
                pool=pool is not None,
                residual_from=residual_from,
            )
        )

    def walk(module: Module) -> None:
        if isinstance(module, ConvBlock):
            add_conv(module)
        elif isinstance(module, ResidualBlock):
            first, second = module.block1, module.block2
            if first.pool is not None or second.pool is not None:
                raise PlanCompileError("pooling inside a residual block")
            if first.conv.in_channels != second.conv.out_channels:
                raise PlanCompileError("residual block does not preserve channels")
            skip_source = len(convs)  # the buffer this block's input lives in
            add_conv(first)
            add_conv(second, residual_from=skip_source)
        elif isinstance(module, Sequential):
            for child in module:
                walk(child)
        elif isinstance(module, GlobalAvgPool2d):
            if state["gap"]:
                raise PlanCompileError("multiple global pooling layers")
            if not convs:
                raise PlanCompileError("global pooling before any convolution")
            state["gap"] = True
            state["features"] = convs[-1].out_channels
        elif isinstance(module, Flatten):
            if not state["gap"]:
                raise PlanCompileError("Flatten outside the pooled head")
        elif isinstance(module, Linear):
            if not state["gap"]:
                raise PlanCompileError("Linear outside the pooled head")
            if module.in_features != state["features"]:
                raise PlanCompileError(
                    f"head linear expects {module.in_features} features, "
                    f"previous step produces {state['features']}"
                )
            state["features"] = module.out_features
            head.append(
                HeadStep(
                    kind="linear",
                    # np.array (not ascontiguousarray): the plan must
                    # SNAPSHOT the weights, never alias the live ones.
                    weight=np.array(module.weight.data, dtype=dtype, order="C"),
                    bias=(
                        np.array(module.bias.data, dtype=dtype, order="C")
                        if module.bias is not None
                        else None
                    ),
                )
            )
        elif isinstance(module, GELU):
            if not state["gap"]:
                raise PlanCompileError("GELU outside the pooled head")
            head.append(HeadStep(kind="gelu"))
        else:
            raise PlanCompileError(f"cannot compile module {type(module).__name__}")

    for child in network.children():
        walk(child)

    if not convs:
        raise PlanCompileError("network has no convolutional trunk")
    if not state["gap"]:
        raise PlanCompileError("network has no global pooling head")
    linears = [step for step in head if step.kind == "linear"]
    if not linears:
        raise PlanCompileError("head has no linear layer")
    if head[-1].kind != "linear":
        raise PlanCompileError("head must end in a linear layer")
    return InferencePlan(tuple(convs), tuple(head), dtype)


def _gelu_ops(
    x: np.ndarray,
    scratch: np.ndarray,
    dtype: np.dtype,
    final_out: Optional[np.ndarray] = None,
    defer_scale: bool = False,
) -> List[Callable[[], None]]:
    """In-place tanh-GELU: ``0.5 * x * (1 + tanh(c * (x + a * x^3)))``.

    The inner polynomial is evaluated as ``(c*a) * x^2 + c`` times
    ``x`` — one fewer pass over memory than the literal form, equal
    within float re-association noise.  The chain leaves the result in
    ``scratch`` (or writes its last multiply into ``final_out``,
    fusing the staging copy away).  With ``defer_scale`` the final
    ``* 0.5`` is omitted: a positive power-of-two scale is exact and
    order-preserving, so callers may commute it past a following
    max-pool and scale the quarter-sized output instead.
    """
    ca = dtype.type(float(np.sqrt(2.0 / np.pi)) * 0.044715)
    c = dtype.type(np.sqrt(2.0 / np.pi))
    one = dtype.type(1.0)
    half = dtype.type(0.5)
    ops: List[Callable[[], None]] = [
        lambda: np.multiply(x, x, out=scratch),
        lambda: np.multiply(scratch, ca, out=scratch),
        lambda: np.add(scratch, c, out=scratch),
        lambda: np.multiply(scratch, x, out=scratch),
        lambda: np.tanh(scratch, out=scratch),
        lambda: np.add(scratch, one, out=scratch),
    ]
    if defer_scale:
        ops.append(lambda: np.multiply(scratch, x, out=scratch))
    elif final_out is None:
        ops.append(lambda: np.multiply(scratch, x, out=scratch))
        ops.append(lambda: np.multiply(scratch, half, out=scratch))
    else:
        ops.append(lambda: np.multiply(scratch, x, out=scratch))
        ops.append(lambda: np.multiply(scratch, half, out=final_out))
    return ops


class _Arena:
    """All scratch state for one (capacity, height, width) geometry.

    Padded NHWC activation buffers (zero borders written once, interiors
    rewritten per call), width-window band buffers, conv output/scratch
    pairs and head buffers — allocated once, reused by every query.
    Programs (flat closure lists over ``[:n]`` views) are memoized per
    batch size so steady-state execution does no slicing work either.
    """

    _MAX_PROGRAMS = 64

    def __init__(self, plan: "InferencePlan", capacity: int, height: int, width: int):
        self.capacity = capacity
        self.height = height
        self.width = width
        dtype = plan.dtype
        self.pads: List[np.ndarray] = []
        self.bands: List[np.ndarray] = []
        self.outs: List[np.ndarray] = []
        self.scratches: List[np.ndarray] = []
        self.pools: List[Optional[np.ndarray]] = []
        self.shapes: List[Tuple[int, int]] = []
        h, w = height, width
        self.active: List[Tuple[int, int]] = []
        for index, step in enumerate(plan.conv_steps):
            if h < 1 or w < 1 or (step.pool and (h < 2 or w < 2)):
                raise ValueError(
                    f"input geometry {height}x{width} collapses to "
                    f"{h}x{w} at conv step {index}"
                )
            self.shapes.append((h, w))
            # A pool step only ever reads the even-cropped region of
            # its conv's output, so the conv is not computed past it.
            active_h = 2 * (h // 2) if step.pool else h
            active_w = 2 * (w // 2) if step.pool else w
            self.active.append((active_h, active_w))
            self.pads.append(
                np.zeros((capacity, h + 2, w + 2, step.in_channels), dtype=dtype)
            )
            # One extra, constant-1 trailing column per window row: the
            # folded bias rides into the first band GEMM as the K+1-th
            # term, so no separate bias pass ever runs.  The gather
            # only ever writes the leading 3C columns, so the ones
            # written here survive forever.
            band = np.empty(
                (capacity, active_h + 2, active_w, 3 * step.in_channels + 1),
                dtype=dtype,
            )
            band[..., -1] = dtype.type(1.0)
            self.bands.append(band)
            out = np.empty(
                (capacity, active_h, active_w, step.out_channels), dtype=dtype
            )
            self.outs.append(out)
            self.scratches.append(np.empty_like(out))
            if step.pool:
                # Half-width staging buffer for the separable max.
                self.pools.append(
                    np.empty(
                        (capacity, active_h, active_w // 2, step.out_channels),
                        dtype=dtype,
                    )
                )
                h, w = h // 2, w // 2
            else:
                self.pools.append(None)
        if h < 1 or w < 1:
            raise ValueError(
                f"input geometry {height}x{width} pools away to {h}x{w}"
            )
        trunk_channels = plan.conv_steps[-1].out_channels
        self.trunk = np.empty((capacity, h, w, trunk_channels), dtype=dtype)
        self.trunk_shape = (h, w)
        self.feat = np.empty((capacity, trunk_channels), dtype=dtype)
        self.head_bufs: List[np.ndarray] = []
        features = trunk_channels
        for step in plan.head_steps:
            if step.kind == "linear":
                features = step.weight.shape[0]
            self.head_bufs.append(np.empty((capacity, 1, features), dtype=dtype))
        self._programs: Dict[int, Tuple[List[Callable[[], None]], np.ndarray]] = {}
        self._plan = plan

    # ------------------------------------------------------------------
    # Program assembly
    # ------------------------------------------------------------------
    def _destination(self, index: int, n: int) -> np.ndarray:
        """Where conv ``index``'s staged activation lands for batch ``n``.

        The interior of the next conv's padded buffer, or the trunk
        buffer after the last conv — either way the write is fused into
        the step's final kernel, so no separate staging copy runs.
        """
        steps = self._plan.conv_steps
        if index + 1 < len(steps):
            h, w = self.shapes[index + 1]
            return self.pads[index + 1][:n, 1 : 1 + h, 1 : 1 + w, :]
        h, w = self.trunk_shape
        return self.trunk[:n]

    def _build_program(
        self, n: int
    ) -> Tuple[List[Callable[[], None]], np.ndarray]:
        plan = self._plan
        dtype = plan.dtype
        ops: List[Callable[[], None]] = []
        for index, step in enumerate(plan.conv_steps):
            active_h, active_w = self.active[index]
            channels = step.in_channels
            pad = self.pads[index][:n]
            band = self.bands[index][:n]
            out = self.outs[index][:n]
            scratch = self.scratches[index][:n]
            # Width-window view: band[n, row, w, dx*C + c] reads the
            # three horizontally adjacent pixels in one contiguous run
            # (padding is part of the buffer, so no np.pad ever runs).
            stride_n, stride_h, stride_w, stride_c = pad.strides
            window = np.lib.stride_tricks.as_strided(
                pad,
                shape=(n, active_h + 2, active_w, 3 * channels),
                strides=(stride_n, stride_h, stride_w, stride_c),
                writeable=False,
            )
            positions = active_h * active_w
            out_flat = out.reshape(n, positions, step.out_channels)
            scratch_flat = scratch.reshape(n, positions, step.out_channels)
            row_bands = [
                band[:, dy : dy + active_h].reshape(
                    n, positions, 3 * channels + 1
                )
                for dy in range(3)
            ]
            # Extended band matrices: W0 carries the folded bias on the
            # constant-ones row; W1/W2 zero it out.
            zero_row = np.zeros((1, step.out_channels), dtype=dtype)
            w0 = np.vstack([step.bands[0], step.bias[None, :]])
            w1 = np.vstack([step.bands[1], zero_row])
            w2 = np.vstack([step.bands[2], zero_row])

            def gather(dst=band[..., : 3 * channels], src=window):
                np.copyto(dst, src)

            def kernel_rows(
                b0=row_bands[0],
                b1=row_bands[1],
                b2=row_bands[2],
                w0=w0,
                w1=w1,
                w2=w2,
                y=out_flat,
                s=scratch_flat,
            ):
                # Three per-sample GEMMs, one per kernel row; summing
                # them (bias included via the ones column) is the
                # whole convolution.
                np.matmul(b0, w0, out=y)
                np.matmul(b1, w1, out=s)
                np.add(y, s, out=y)
                np.matmul(b2, w2, out=s)
                np.add(y, s, out=y)

            ops.append(gather)
            ops.append(kernel_rows)
            destination = self._destination(index, n)
            if step.pool:
                # Deferred * 0.5: exact for a power-of-two scale and
                # order-preserving, so it commutes past the max and
                # runs on the quarter-sized pooled output instead.
                ops.extend(_gelu_ops(out, scratch, dtype, defer_scale=True))
                half = dtype.type(0.5)
                # Separable 2x2 max: horizontal pairs (adjacent in
                # memory) into a contiguous half-width buffer, then
                # vertical pairs into the destination — fewer strided
                # passes than the classic four-quadrant form, same max.
                hbuf = self.pools[index][:n]

                def pool(
                    left=scratch[:, :, 0::2, :],
                    right=scratch[:, :, 1::2, :],
                    hbuf=hbuf,
                    top=hbuf[:, 0::2],
                    bottom=hbuf[:, 1::2],
                    dst=destination,
                    half=half,
                ):
                    np.maximum(left, right, out=hbuf)
                    np.maximum(top, bottom, out=dst)
                    np.multiply(dst, half, out=dst)

                ops.append(pool)
            elif step.residual_from is not None:
                source_h, source_w = self.shapes[step.residual_from]
                skip = self.pads[step.residual_from][
                    :n, 1 : 1 + source_h, 1 : 1 + source_w, :
                ]
                ops.extend(_gelu_ops(out, scratch, dtype))

                def residual(a=scratch, b=skip, dst=destination):
                    np.add(a, b, out=dst)

                ops.append(residual)
            else:
                ops.extend(_gelu_ops(out, scratch, dtype, final_out=destination))

        trunk = self.trunk[:n]
        feat = self.feat[:n]

        def global_pool(x=trunk, dst=feat):
            np.mean(x, axis=(1, 2), out=dst)

        ops.append(global_pool)
        current = feat.reshape(n, 1, feat.shape[1])
        for step_index, step in enumerate(plan.head_steps):
            buffer = self.head_bufs[step_index][:n]
            if step.kind == "linear":
                # Same rowwise (1, K) @ (K, M) product per sample as
                # eval-mode Linear — bitwise batch-invariant.
                def head_linear(
                    x=current, wt=step.weight.T, b=step.bias, dst=buffer
                ):
                    np.matmul(x, wt, out=dst)
                    if b is not None:
                        np.add(dst, b, out=dst)

                ops.append(head_linear)
                current = buffer
            else:
                ops.extend(_gelu_ops(current, buffer, dtype))
                current = buffer
        return ops, current

    def run(self, n: int) -> np.ndarray:
        program = self._programs.get(n)
        if program is None:
            if len(self._programs) >= self._MAX_PROGRAMS:
                self._programs.clear()
            program = self._build_program(n)
            self._programs[n] = program
        ops, result = program
        for op in ops:
            op()
        return result[:, 0, :].copy()

    def input_view(self, n: int) -> np.ndarray:
        """NCHW view of the first padded buffer's interior for ``n`` rows."""
        h, w = self.shapes[0]
        interior = self.pads[0][:n, 1 : 1 + h, 1 : 1 + w, :]
        return interior.transpose(0, 3, 1, 2)


class InferencePlan:
    """A compiled network: folded kernel steps plus reusable arenas.

    Obtain one with :func:`compile_resnet9`; query it either through
    :meth:`forward` (copies an NCHW array in) or zero-copy through the
    :meth:`prepare` / :meth:`execute` pair, where the caller renders
    its input directly into the plan's arena (what
    :meth:`~repro.estimator.embedding.EmbeddingSpace.encode_batch`
    does with ``out=``).  Plans are immutable snapshots — they never
    see later weight updates; the owning estimator recompiles on its
    backbone's :attr:`~repro.nn.layers.Module.version`.
    """

    def __init__(
        self,
        conv_steps: Tuple[ConvStep, ...],
        head_steps: Tuple[HeadStep, ...],
        dtype: np.dtype,
    ) -> None:
        self.conv_steps = conv_steps
        self.head_steps = head_steps
        self.dtype = np.dtype(dtype)
        self.in_channels = conv_steps[0].in_channels
        self.out_features = next(
            step.weight.shape[0]
            for step in reversed(head_steps)
            if step.kind == "linear"
        )
        self._arenas: Dict[Tuple[int, int], _Arena] = {}

    def _arena(self, batch: int, height: int, width: int) -> _Arena:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        key = (height, width)
        arena = self._arenas.get(key)
        if arena is None or arena.capacity < batch:
            arena = _Arena(self, batch, height, width)
            self._arenas[key] = arena
        return arena

    def prepare(self, batch: int, height: int, width: int) -> np.ndarray:
        """An ``(batch, C, H, W)`` NCHW view to render the input into.

        The view aliases the first padded arena buffer, so a
        subsequent :meth:`execute` call consumes it without any copy.
        """
        return self._arena(batch, height, width).input_view(batch)

    def execute(self, batch: int, height: int, width: int) -> np.ndarray:
        """Run the plan over an input staged via :meth:`prepare`.

        Returns a fresh ``(batch, out_features)`` array (the only
        allocation on the steady-state path).
        """
        arena = self._arenas.get((height, width))
        if arena is None or arena.capacity < batch:
            raise PlanExecutionError(
                f"no prepared arena for batch {batch} geometry "
                f"{height}x{width}; call prepare() first"
            )
        return arena.run(batch)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compiled forward over an NCHW array (casts to the plan dtype)."""
        x = np.asarray(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got shape "
                f"{x.shape}"
            )
        batch, _, height, width = x.shape
        view = self.prepare(batch, height, width)
        np.copyto(view, x, casting="unsafe")
        return self.execute(batch, height, width)

    __call__ = forward
