"""Datasets and a mini-batch loader with deterministic shuffling."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["TensorDataset", "DataLoader"]


class TensorDataset:
    """Paired input/target arrays addressed by index."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ in length"
            )
        if len(inputs) == 0:
            raise ValueError("dataset must contain at least one sample")
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def split(
        self, first_size: int
    ) -> Tuple["TensorDataset", "TensorDataset"]:
        """Split into (first ``first_size`` samples, the rest), in order.

        The paper's 400/100 train/validation split is produced this way
        after the generator has already shuffled sample order.
        """
        if not 0 < first_size < len(self):
            raise ValueError(
                f"first_size must be in (0, {len(self)}), got {first_size}"
            )
        return (
            TensorDataset(self.inputs[:first_size], self.targets[:first_size]),
            TensorDataset(self.inputs[first_size:], self.targets[first_size:]),
        )


class DataLoader:
    """Iterate a dataset in mini-batches, optionally shuffled per epoch."""

    def __init__(
        self,
        dataset: TensorDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        """Number of batches per epoch (last partial batch included)."""
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start : start + self.batch_size]
            yield self.dataset.inputs[batch], self.dataset.targets[batch]
