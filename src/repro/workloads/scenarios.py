"""Named application scenarios from the paper's motivation.

The introduction motivates multi-DNN workloads with "digital
assistants, object detection, and virtual/augmented reality services".
These presets bundle a mix with per-network offered frame rates, so
examples and benches can evaluate schedulers on workloads that look
like deployed applications rather than uniform random mixes.

The second half of the module holds the *churn* scenarios — named,
seeded :class:`~repro.workloads.trace.ArrivalTrace` factories
(``bursty``, ``diurnal``, ``priority-inversion``, ``steady-drain``,
``priority-storm``, ``slo-squeeze``, ``estimator-brownout``) that
stress the online scheduling subsystem with characteristic tenancy
dynamics instead of a static mix.  See ``docs/online.md`` for what
each shape exercises, ``docs/slo.md`` for the two enforcement
stressors, and ``docs/resilience.md`` for the fault-injection drill.

The third group is the *fleet* scenarios — request bursts and
high-concurrency traces sized for a multi-board
:class:`~repro.fleet.FleetService` rather than one board
(``request-burst``, ``fleet-churn``, ``heavy-split``), plus the two
elastic-fleet stressors: ``board-failure`` (churn sized so a two-board
fleet survives losing either board at any event index — the chaos
sweep shape) and ``flash-crowd`` (a simultaneous arrival spike that
overflows a small fleet and then drains — the autoscaler shape).  See
``docs/fleet.md`` and ``docs/elastic.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..models.registry import MODEL_NAMES
from .mix import Workload, canonical_signature
from .trace import ArrivalTrace, TraceBuilder, TraceConfig, generate_trace

__all__ = [
    "Scenario",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "ChurnScenario",
    "CHURN_SCENARIOS",
    "churn_scenario",
    "churn_scenario_names",
    "FleetScenario",
    "FLEET_SCENARIOS",
    "fleet_scenario",
    "fleet_scenario_names",
]


@dataclass(frozen=True)
class Scenario:
    """A deployable multi-DNN application profile.

    ``offered_rates`` aligns with ``workload.models``; pass it to
    :meth:`repro.sim.BoardSimulator.simulate` so each network is served
    at its application rate.
    """

    name: str
    description: str
    workload: Workload
    offered_rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.offered_rates) != self.workload.num_dnns:
            raise ValueError(
                f"scenario {self.name!r}: {len(self.offered_rates)} rates for "
                f"{self.workload.num_dnns} networks"
            )
        if any(rate <= 0 for rate in self.offered_rates):
            raise ValueError(f"scenario {self.name!r}: rates must be positive")


def _build() -> Dict[str, Scenario]:
    presets: List[Scenario] = [
        Scenario(
            name="ar-headset",
            description=(
                "Augmented reality: hand tracking (MobileNet, 15 FPS), "
                "scene segmentation backbone (ResNet-50, 5 FPS), object "
                "classification (SqueezeNet, 10 FPS)"
            ),
            workload=Workload.from_names(
                ["mobilenet", "resnet50", "squeezenet"], name="ar-headset"
            ),
            offered_rates=(15.0, 5.0, 10.0),
        ),
        Scenario(
            name="smart-camera",
            description=(
                "Security camera: motion-gated detection (AlexNet, 8 FPS), "
                "face embedding (VGG-16, 2 FPS), activity recognition "
                "(Inception-v3, 3 FPS), license plates (SqueezeNet, 6 FPS)"
            ),
            workload=Workload.from_names(
                ["alexnet", "vgg16", "inception_v3", "squeezenet"],
                name="smart-camera",
            ),
            offered_rates=(8.0, 2.0, 3.0, 6.0),
        ),
        Scenario(
            name="digital-assistant",
            description=(
                "Assistant hub: wake-face check (MobileNet, 10 FPS), "
                "gesture recognition (ResNet-34, 6 FPS), document OCR "
                "backbone (VGG-13, 1 FPS)"
            ),
            workload=Workload.from_names(
                ["mobilenet", "resnet34", "vgg13"], name="digital-assistant"
            ),
            offered_rates=(10.0, 6.0, 1.0),
        ),
        Scenario(
            name="drone-autonomy",
            description=(
                "Drone: obstacle segmentation (ResNet-50, 12 FPS), "
                "target re-identification (Inception-v3, 4 FPS), "
                "landing-pad detection (SqueezeNet, 8 FPS), telemetry "
                "vision (MobileNet, 12 FPS), mapping backbone "
                "(ResNet-34, 2 FPS)"
            ),
            workload=Workload.from_names(
                ["resnet50", "inception_v3", "squeezenet", "mobilenet", "resnet34"],
                name="drone-autonomy",
            ),
            offered_rates=(12.0, 4.0, 8.0, 12.0, 2.0),
        ),
    ]
    return {preset.name: preset for preset in presets}


SCENARIOS: Dict[str, Scenario] = _build()


def scenario(name: str) -> Scenario:
    """Fetch a named scenario."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        )
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """All scenario names."""
    return list(SCENARIOS)


# ----------------------------------------------------------------------
# Churn scenarios: named arrival/departure trace shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnScenario:
    """A named tenancy-dynamics shape for the online subsystem.

    ``build(seed)`` returns a fresh, deterministic
    :class:`~repro.workloads.trace.ArrivalTrace`; the same seed always
    yields the same trace.
    """

    name: str
    description: str
    build: Callable[[int], ArrivalTrace]


def _bursty(seed: int) -> ArrivalTrace:
    """Quiet baseline punctuated by simultaneous arrival bursts.

    A long-lived anchor tenant holds the board while bursts of 2–3
    short-lived tenants land on *identical* timestamps every 8 s —
    the coalesced-group / concurrent-re-search stressor.
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(max_concurrent=5, name="bursty")
    builder.add(0.0, "mobilenet", lifetime_s=46.0, priority=0)
    for burst in range(1, 6):
        time_s = burst * 8.0
        builder.advance(time_s)
        free = [m for m in MODEL_NAMES if m not in builder.active_models]
        size = int(rng.integers(2, 4))
        chosen = rng.permutation(len(free))[:size]
        for index in chosen:
            builder.add(
                time_s,
                free[int(index)],
                lifetime_s=float(rng.uniform(3.0, 7.0)),
                priority=int(rng.integers(0, 2)),
            )
    return builder.finish()


def _diurnal(seed: int) -> ArrivalTrace:
    """Sinusoidally modulated arrival intensity (a compressed day).

    Arrival candidates are drawn at a constant peak rate and thinned
    by the instantaneous intensity, so load swells and ebbs smoothly;
    lifetimes are long enough that the peaks stack tenants.
    """
    rng = np.random.default_rng(seed)
    peak_rate = 0.8
    period_s = 40.0
    builder = TraceBuilder(max_concurrent=5, name="diurnal")
    time_s = 0.0
    while True:
        time_s += float(rng.exponential(1.0 / peak_rate))
        if time_s >= 80.0:
            break
        intensity = 0.5 * (1.0 + np.sin(2.0 * np.pi * time_s / period_s))
        accept = rng.random() < intensity
        lifetime = float(rng.uniform(8.0, 25.0))
        if not accept:
            continue
        builder.advance(time_s)
        free = [m for m in MODEL_NAMES if m not in builder.active_models]
        if not free:
            continue
        builder.add(
            time_s,
            free[int(rng.integers(len(free)))],
            lifetime_s=lifetime,
            priority=int(rng.integers(0, 2)),
        )
    return builder.finish()


def _priority_inversion(seed: int) -> ArrivalTrace:
    """Low-priority residents first, urgent short-lived churn on top.

    Three priority-0 tenants occupy the board for the whole horizon,
    then priority-2 tenants arrive and leave quickly — the shape that
    exposes priority handling in batching and reporting (does urgent
    work wait behind resident bulk?).
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(max_concurrent=5, name="priority-inversion")
    for index, model in enumerate(["vgg19", "resnet50", "inception_v3"]):
        builder.add(2.0 * index, model, lifetime_s=60.0, priority=0)
    time_s = 10.0
    while True:
        time_s += float(rng.exponential(1.0 / 0.35))
        if time_s >= 50.0:
            break
        builder.advance(time_s)
        free = [m for m in MODEL_NAMES if m not in builder.active_models]
        if not free:
            continue
        builder.add(
            time_s,
            free[int(rng.integers(len(free)))],
            lifetime_s=float(rng.uniform(3.0, 8.0)),
            priority=2,
        )
    return builder.finish()


def _steady_drain(seed: int) -> ArrivalTrace:
    """A filled board that only empties: departures dominate.

    All arrivals land in the first 15 s with widely spread lifetimes,
    then tenants leave one by one until the board is empty — a pure
    sequence of single departures, the warm-start re-search's home
    turf.
    """
    return generate_trace(
        TraceConfig(
            arrival_rate=0.6,
            min_lifetime_s=10.0,
            max_lifetime_s=45.0,
            horizon_s=15.0,
            max_concurrent=5,
            seed=seed,
            name="steady-drain",
        )
    )


def _priority_storm(seed: int) -> ArrivalTrace:
    """A nearly full board under a storm of mixed-priority arrivals.

    Three priority-0 anchors hold the board for the whole horizon;
    short-lived priority 1-3 tenants then arrive every ~2 s, so most
    of them find at most one slot of headroom.  Without a policy this
    is a plain contention shape; under an enforcing
    :class:`~repro.slo.SLOPolicy` it is the preemption / queueing
    stressor (the CI ``slo-smoke`` replay).
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(max_concurrent=5, name="priority-storm")
    for index, model in enumerate(["vgg19", "resnet50", "inception_v3"]):
        builder.add(1.5 * index, model, lifetime_s=55.0, priority=0)
    time_s = 6.0
    while True:
        time_s += float(rng.exponential(1.0 / 0.5))
        if time_s >= 45.0:
            break
        builder.advance(time_s)
        free = [m for m in MODEL_NAMES if m not in builder.active_models]
        if not free:
            continue
        builder.add(
            time_s,
            free[int(rng.integers(len(free)))],
            lifetime_s=float(rng.uniform(2.0, 6.0)),
            priority=int(rng.integers(1, 4)),
        )
    return builder.finish()


def _slo_squeeze(seed: int) -> ArrivalTrace:
    """Heavy low-priority anchors squeezing a high-priority stream.

    Four priority-0 heavy anchors (VGG / ResNet class) keep the board
    one slot from full for the whole horizon while priority-2
    short-lived light tenants arrive every ~6 s, with occasional
    priority-0 fillers competing for the same last slot.  Observed
    without enforcement, the high-priority stream always scores
    through a 4-5 deep mix; with admission + preemption on, the
    anchors give way and its attainment percentiles improve — the
    acceptance shape pinned in ``tests/test_slo_properties.py``.
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(max_concurrent=5, name="slo-squeeze")
    anchors = ["vgg19", "vgg16", "resnet50", "inception_v3"]
    for index, model in enumerate(anchors):
        builder.add(1.0 * index, model, lifetime_s=70.0, priority=0)
    light = ["mobilenet", "squeezenet", "alexnet", "resnet34"]
    time_s = 8.0
    position = 0
    while time_s < 62.0:
        builder.advance(time_s)
        if rng.random() < 0.25:
            fillers = [
                m
                for m in ("vgg13", "resnet101", "inception_v4")
                if m not in builder.active_models
            ]
            if fillers:
                builder.add(
                    time_s,
                    fillers[int(rng.integers(len(fillers)))],
                    lifetime_s=float(rng.uniform(6.0, 12.0)),
                    priority=0,
                )
            time_s += float(rng.uniform(1.0, 2.0))
            continue
        model = light[position % len(light)]
        position += 1
        if model not in builder.active_models:
            builder.add(
                time_s,
                model,
                lifetime_s=float(rng.uniform(2.5, 4.5)),
                priority=2,
            )
        time_s += float(rng.uniform(5.0, 7.0))
    return builder.finish()


def _estimator_brownout(seed: int) -> ArrivalTrace:
    """Steady small-mix churn sized for fault-injection drills.

    A compact horizon (~20 s) of modest arrivals with overlapping
    lifetimes: enough re-searches that a seeded
    :class:`~repro.resilience.FaultPlan` can hit estimator forwards at
    predictable call counts, short enough that a resilience smoke test
    (replay, crash, resume, compare — the CI ``resilience-smoke`` job)
    stays cheap.  The shape itself is benign; the *brownout* comes
    from the fault plan injected on top.
    """
    return generate_trace(
        TraceConfig(
            arrival_rate=0.5,
            min_lifetime_s=6.0,
            max_lifetime_s=22.0,
            horizon_s=20.0,
            max_concurrent=4,
            seed=seed,
            name="estimator-brownout",
        )
    )


CHURN_SCENARIOS: Dict[str, ChurnScenario] = {
    preset.name: preset
    for preset in [
        ChurnScenario(
            name="bursty",
            description=(
                "quiet baseline with bursts of simultaneous short-lived "
                "arrivals every 8 s over a long-lived anchor tenant"
            ),
            build=_bursty,
        ),
        ChurnScenario(
            name="diurnal",
            description=(
                "sinusoidally modulated arrival intensity with long "
                "lifetimes; load swells and ebbs like a compressed day"
            ),
            build=_diurnal,
        ),
        ChurnScenario(
            name="priority-inversion",
            description=(
                "three low-priority residents for the whole horizon, "
                "urgent priority-2 short-lived tenants churning on top"
            ),
            build=_priority_inversion,
        ),
        ChurnScenario(
            name="steady-drain",
            description=(
                "every arrival lands in the first 15 s, then the board "
                "drains tenant by tenant to empty — pure departures"
            ),
            build=_steady_drain,
        ),
        ChurnScenario(
            name="priority-storm",
            description=(
                "three resident anchors plus a storm of short-lived "
                "priority 1-3 arrivals every ~2 s — the preemption and "
                "queueing stressor for an enforcing SLO policy"
            ),
            build=_priority_storm,
        ),
        ChurnScenario(
            name="slo-squeeze",
            description=(
                "four heavy low-priority anchors squeezing a periodic "
                "priority-2 stream of light tenants — the shape where "
                "SLO enforcement visibly lifts high-priority attainment"
            ),
            build=_slo_squeeze,
        ),
        ChurnScenario(
            name="estimator-brownout",
            description=(
                "compact steady churn sized for deterministic fault "
                "drills — the replay a seeded FaultPlan degrades and "
                "the CI resilience smoke crash-resumes"
            ),
            build=_estimator_brownout,
        ),
    ]
}


def churn_scenario(name: str, seed: int = 0) -> ArrivalTrace:
    """Build a named churn scenario's trace (deterministic per seed)."""
    if name not in CHURN_SCENARIOS:
        raise KeyError(
            f"unknown churn scenario {name!r}; available: "
            f"{', '.join(CHURN_SCENARIOS)}"
        )
    return CHURN_SCENARIOS[name].build(seed)


def churn_scenario_names() -> List[str]:
    """All churn scenario names."""
    return list(CHURN_SCENARIOS)


# ----------------------------------------------------------------------
# Fleet scenarios: workloads sized for many boards, not one
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetScenario:
    """A named multi-board serving shape.

    ``build_mixes(seed)`` returns the scenario's deterministic request
    burst (a list of :class:`Workload` for
    :meth:`repro.fleet.FleetService.schedule_many`); ``build_trace``,
    when present, its high-concurrency churn trace for
    :meth:`repro.fleet.FleetService.run_trace`.
    """

    name: str
    description: str
    build_mixes: Callable[[int], List[Workload]]
    build_trace: Optional[Callable[[int], ArrivalTrace]] = None


def _burst_mixes(seed: int, count: int = 8, sizes: Tuple[int, ...] = (3, 2)) -> List[Workload]:
    """``count`` distinct mixes, sizes cycling through ``sizes``."""
    rng = np.random.default_rng(seed)
    mixes: List[Workload] = []
    seen = set()
    while len(mixes) < count:
        size = sizes[len(mixes) % len(sizes)]
        chosen = rng.permutation(len(MODEL_NAMES))[:size]
        names = tuple(MODEL_NAMES[int(i)] for i in chosen)
        signature = canonical_signature(names)
        if signature in seen:
            continue
        seen.add(signature)
        mixes.append(Workload.from_names(names))
    return mixes


def _frontdoor_burst_mixes(seed: int) -> List[Workload]:
    """A duplicate-heavy burst: few distinct mixes, many arrivals.

    Twelve requests drawn from only four distinct mixes (each repeated
    three times, interleaved), the shape the async front door is built
    for: requests sharing a window dedupe through the decision cache,
    and a replay of the same burst against a persistent ``cache_dir``
    should decide nothing at all.
    """
    distinct = _burst_mixes(seed, count=4)
    return [distinct[index % len(distinct)] for index in range(12)]


def _heavy_split_mixes(seed: int) -> List[Workload]:
    """A burst led by mixes larger than one board's residency cap."""
    rng = np.random.default_rng(seed)
    order = [MODEL_NAMES[int(i)] for i in rng.permutation(len(MODEL_NAMES))]
    return [
        Workload.from_names(order[:7], name="heavy-7"),
        Workload.from_names(order[7:11], name="tail-4"),
        Workload.from_names(order[2:5], name="mid-3"),
    ]


def _fleet_churn(seed: int) -> ArrivalTrace:
    """Churn deeper than one board: up to nine concurrent tenants.

    A HiKey970 hangs past five residents, so this shape *requires*
    placement across boards; lifetimes are spread widely enough that
    departures leave the fleet imbalanced (the migration trigger).
    """
    return generate_trace(
        TraceConfig(
            arrival_rate=0.7,
            min_lifetime_s=6.0,
            max_lifetime_s=30.0,
            horizon_s=25.0,
            max_concurrent=9,
            seed=seed,
            name="fleet-churn",
        )
    )


def _board_failure(seed: int) -> ArrivalTrace:
    """Moderate churn a degraded fleet can always absorb.

    At most four concurrent tenants with mid-length lifetimes: one
    HiKey970 (five-resident cap) can host the whole tenancy alone, so
    a two-board fleet survives a :class:`~repro.workloads.trace.ChaosPlan`
    killing either board at *any* event index — the property the
    kill-sweep test replays exhaustively.
    """
    return generate_trace(
        TraceConfig(
            arrival_rate=0.5,
            min_lifetime_s=8.0,
            max_lifetime_s=24.0,
            horizon_s=20.0,
            max_concurrent=4,
            seed=seed,
            name="board-failure",
        )
    )


def _flash_crowd(seed: int) -> ArrivalTrace:
    """Two steady anchors, then a spike of simultaneous arrivals.

    Six tenants land on the *same* timestamp at t=10 s over two
    long-lived anchors — more residents than a small edge fleet can
    hold.  The crowd arrives at priority 0 *below* the priority-1
    anchors, so an enforcing policy cannot preempt its way out: the
    overflow queues, queue depth crosses the autoscaler threshold,
    and the fleet scales out into the cloud tier; the crowd drains
    within ~15 s and scale-in brings the fleet back to baseline while
    the anchors linger.
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(max_concurrent=8, name="flash-crowd")
    builder.add(0.0, "mobilenet", lifetime_s=40.0, priority=1)
    builder.add(1.0, "resnet50", lifetime_s=39.0, priority=1)
    builder.advance(10.0)
    free = [m for m in MODEL_NAMES if m not in builder.active_models]
    chosen = rng.permutation(len(free))[:6]
    for index in chosen:
        builder.add(
            10.0,
            free[int(index)],
            lifetime_s=float(rng.uniform(6.0, 14.0)),
            priority=0,
        )
    return builder.finish()


FLEET_SCENARIOS: Dict[str, FleetScenario] = {
    preset.name: preset
    for preset in [
        FleetScenario(
            name="request-burst",
            description=(
                "eight distinct 2-3 DNN mixes arriving at once — the "
                "cross-board pooled-scheduling stressor"
            ),
            build_mixes=_burst_mixes,
        ),
        FleetScenario(
            name="frontdoor-burst",
            description=(
                "twelve arrivals over only four distinct mixes — the "
                "duplicate-heavy async-ingress shape where decision "
                "windows and the persistent cache dedupe hardest (the "
                "CI frontdoor-smoke shape)"
            ),
            build_mixes=_frontdoor_burst_mixes,
        ),
        FleetScenario(
            name="fleet-churn",
            description=(
                "Poisson churn up to nine concurrent tenants — deeper "
                "than any single board's residency cap"
            ),
            build_mixes=lambda seed: _burst_mixes(seed, count=4),
            build_trace=_fleet_churn,
        ),
        FleetScenario(
            name="heavy-split",
            description=(
                "a seven-DNN mix no single board can host (split "
                "placement) followed by ordinary mixes"
            ),
            build_mixes=_heavy_split_mixes,
        ),
        FleetScenario(
            name="priority-storm",
            description=(
                "the priority-storm churn shape replayed against a "
                "fleet — mixed-priority contention for admission, "
                "queueing and preemption (the CI slo-smoke trace)"
            ),
            build_mixes=lambda seed: _burst_mixes(seed, count=4),
            build_trace=_priority_storm,
        ),
        FleetScenario(
            name="slo-squeeze",
            description=(
                "heavy low-priority anchors squeezing a high-priority "
                "stream — the SLO-enforcement acceptance shape"
            ),
            build_mixes=lambda seed: _burst_mixes(
                seed, count=4, sizes=(2,)
            ),
            build_trace=_slo_squeeze,
        ),
        FleetScenario(
            name="board-failure",
            description=(
                "moderate churn sized so a two-board fleet survives "
                "losing either board at any event index — the chaos "
                "kill-sweep and CI chaos-smoke shape"
            ),
            build_mixes=lambda seed: _burst_mixes(seed, count=4),
            build_trace=_board_failure,
        ),
        FleetScenario(
            name="flash-crowd",
            description=(
                "six simultaneous arrivals at t=10 s over two anchors "
                "— overflow that queues on a small fleet, triggers a "
                "cloud-tier scale-out, and drains back to baseline"
            ),
            build_mixes=lambda seed: _burst_mixes(seed, count=6, sizes=(2,)),
            build_trace=_flash_crowd,
        ),
    ]
}


def fleet_scenario(name: str) -> FleetScenario:
    """Fetch a named fleet scenario."""
    if name not in FLEET_SCENARIOS:
        raise KeyError(
            f"unknown fleet scenario {name!r}; available: "
            f"{', '.join(FLEET_SCENARIOS)}"
        )
    return FLEET_SCENARIOS[name]


def fleet_scenario_names() -> List[str]:
    """All fleet scenario names."""
    return list(FLEET_SCENARIOS)
