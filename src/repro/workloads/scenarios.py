"""Named application scenarios from the paper's motivation.

The introduction motivates multi-DNN workloads with "digital
assistants, object detection, and virtual/augmented reality services".
These presets bundle a mix with per-network offered frame rates, so
examples and benches can evaluate schedulers on workloads that look
like deployed applications rather than uniform random mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .mix import Workload

__all__ = ["Scenario", "SCENARIOS", "scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """A deployable multi-DNN application profile.

    ``offered_rates`` aligns with ``workload.models``; pass it to
    :meth:`repro.sim.BoardSimulator.simulate` so each network is served
    at its application rate.
    """

    name: str
    description: str
    workload: Workload
    offered_rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.offered_rates) != self.workload.num_dnns:
            raise ValueError(
                f"scenario {self.name!r}: {len(self.offered_rates)} rates for "
                f"{self.workload.num_dnns} networks"
            )
        if any(rate <= 0 for rate in self.offered_rates):
            raise ValueError(f"scenario {self.name!r}: rates must be positive")


def _build() -> Dict[str, Scenario]:
    presets: List[Scenario] = [
        Scenario(
            name="ar-headset",
            description=(
                "Augmented reality: hand tracking (MobileNet, 15 FPS), "
                "scene segmentation backbone (ResNet-50, 5 FPS), object "
                "classification (SqueezeNet, 10 FPS)"
            ),
            workload=Workload.from_names(
                ["mobilenet", "resnet50", "squeezenet"], name="ar-headset"
            ),
            offered_rates=(15.0, 5.0, 10.0),
        ),
        Scenario(
            name="smart-camera",
            description=(
                "Security camera: motion-gated detection (AlexNet, 8 FPS), "
                "face embedding (VGG-16, 2 FPS), activity recognition "
                "(Inception-v3, 3 FPS), license plates (SqueezeNet, 6 FPS)"
            ),
            workload=Workload.from_names(
                ["alexnet", "vgg16", "inception_v3", "squeezenet"],
                name="smart-camera",
            ),
            offered_rates=(8.0, 2.0, 3.0, 6.0),
        ),
        Scenario(
            name="digital-assistant",
            description=(
                "Assistant hub: wake-face check (MobileNet, 10 FPS), "
                "gesture recognition (ResNet-34, 6 FPS), document OCR "
                "backbone (VGG-13, 1 FPS)"
            ),
            workload=Workload.from_names(
                ["mobilenet", "resnet34", "vgg13"], name="digital-assistant"
            ),
            offered_rates=(10.0, 6.0, 1.0),
        ),
        Scenario(
            name="drone-autonomy",
            description=(
                "Drone: obstacle segmentation (ResNet-50, 12 FPS), "
                "target re-identification (Inception-v3, 4 FPS), "
                "landing-pad detection (SqueezeNet, 8 FPS), telemetry "
                "vision (MobileNet, 12 FPS), mapping backbone "
                "(ResNet-34, 2 FPS)"
            ),
            workload=Workload.from_names(
                ["resnet50", "inception_v3", "squeezenet", "mobilenet", "resnet34"],
                name="drone-autonomy",
            ),
            offered_rates=(12.0, 4.0, 8.0, 12.0, 2.0),
        ),
    ]
    return {preset.name: preset for preset in presets}


SCENARIOS: Dict[str, Scenario] = _build()


def scenario(name: str) -> Scenario:
    """Fetch a named scenario."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        )
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """All scenario names."""
    return list(SCENARIOS)
