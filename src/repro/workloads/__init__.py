"""Workload mixes, random generation and dataset sampling."""

from .generator import (
    WorkloadGenerator,
    random_contiguous_mapping,
    random_two_stage_mapping,
)
from .mix import Workload
from .scenarios import SCENARIOS, Scenario, scenario, scenario_names

__all__ = [
    "SCENARIOS",
    "Scenario",
    "scenario",
    "scenario_names",
    "Workload",
    "WorkloadGenerator",
    "random_contiguous_mapping",
    "random_two_stage_mapping",
]
