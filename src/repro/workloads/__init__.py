"""Workloads: named mixes, random generation, and dynamic churn traces."""

from .generator import (
    WorkloadGenerator,
    random_contiguous_mapping,
    random_two_stage_mapping,
)
from .mix import Workload, canonical_signature
from .scenarios import (
    CHURN_SCENARIOS,
    ChurnScenario,
    FLEET_SCENARIOS,
    FleetScenario,
    SCENARIOS,
    Scenario,
    churn_scenario,
    churn_scenario_names,
    fleet_scenario,
    fleet_scenario_names,
    scenario,
    scenario_names,
)
from .trace import (
    ArrivalEvent,
    ArrivalTrace,
    ChaosPlan,
    FailureEvent,
    TraceBuilder,
    TraceConfig,
    generate_trace,
)

__all__ = [
    "ArrivalEvent",
    "ArrivalTrace",
    "CHURN_SCENARIOS",
    "ChaosPlan",
    "ChurnScenario",
    "FLEET_SCENARIOS",
    "FailureEvent",
    "FleetScenario",
    "SCENARIOS",
    "Scenario",
    "TraceBuilder",
    "TraceConfig",
    "Workload",
    "WorkloadGenerator",
    "canonical_signature",
    "churn_scenario",
    "churn_scenario_names",
    "fleet_scenario",
    "fleet_scenario_names",
    "generate_trace",
    "random_contiguous_mapping",
    "random_two_stage_mapping",
    "scenario",
    "scenario_names",
]
