"""Random workload and mapping generation.

Reproduces the paper's data-collection recipe: "we created 500
workloads, consisting of random mixes ranging from 1 up to 5 concurrent
DNNs ... each mix was randomly distributed across the computing
components of the device, in order to create samples with different
pressure on the computing components."

Feasibility filter: mixes whose aggregate weights exceed the residency
budget are re-drawn.  On the physical board, heavy mixes simply cannot
be loaded (the paper's 6-DNN mixes hung the device); this keeps
generated 5-DNN mixes on the lighter side, exactly the regime Fig. 5c
operates in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..models.graph import ModelGraph
from ..models.registry import MODEL_NAMES
from ..sim.mapping import Mapping
from .mix import Workload

__all__ = ["WorkloadGenerator", "random_contiguous_mapping", "random_two_stage_mapping"]


def random_contiguous_mapping(
    models: Sequence[ModelGraph],
    num_devices: int,
    rng: np.random.Generator,
    max_stages: Optional[int] = None,
) -> Mapping:
    """Sample a mapping with contiguous per-DNN stages.

    Each DNN gets a random stage count in ``[1, max_stages]``, random
    distinct devices per stage and random split points -- the same
    family of set-ups the paper's motivational experiment draws.
    """
    if max_stages is None:
        max_stages = num_devices
    max_stages = max(1, min(max_stages, num_devices))
    rows: List[List[int]] = []
    for model in models:
        num_layers = model.num_layers
        stage_count = int(rng.integers(1, min(max_stages, num_layers) + 1))
        devices = rng.permutation(num_devices)[:stage_count]
        if stage_count == 1:
            rows.append([int(devices[0])] * num_layers)
            continue
        cut_positions = rng.choice(
            np.arange(1, num_layers), size=stage_count - 1, replace=False
        )
        cuts = sorted(int(c) for c in cut_positions)
        row: List[int] = []
        previous = 0
        for stage_index, cut in enumerate(cuts + [num_layers]):
            row.extend([int(devices[stage_index])] * (cut - previous))
            previous = cut
        rows.append(row)
    return Mapping(rows)


def random_two_stage_mapping(
    models: Sequence[ModelGraph],
    rng: np.random.Generator,
    devices: Tuple[int, int] = (0, 1),
) -> Mapping:
    """Sample a set-up from the paper's motivational family (Fig. 1).

    Every DNN is split into exactly two stages between two devices
    (paper Section II: "we randomly split the layers of the DNNs
    between the big CPU and the GPU"): a uniform split point and a
    random orientation (which device runs the head).
    """
    first, second = devices
    rows: List[List[int]] = []
    for model in models:
        num_layers = model.num_layers
        if num_layers < 2:
            rows.append([int(rng.choice(devices))] * num_layers)
            continue
        cut = int(rng.integers(1, num_layers))
        head, tail = (first, second) if rng.random() < 0.5 else (second, first)
        rows.append([head] * cut + [tail] * (num_layers - cut))
    return Mapping(rows)


class WorkloadGenerator:
    """Samples random mixes and random mappings, reproducibly.

    Parameters
    ----------
    model_names:
        Pool to draw from (defaults to the paper's eleven networks).
    num_devices:
        Number of computing components mappings may target.
    max_total_weight_bytes:
        Residency feasibility budget; mixes above it are re-drawn.
    seed:
        Seed for the internal generator.
    """

    def __init__(
        self,
        model_names: Sequence[str] = MODEL_NAMES,
        num_devices: int = 3,
        max_total_weight_bytes: float = 2.0e9,
        seed: int = 0,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.model_names = tuple(model_names)
        if not self.model_names:
            raise ValueError("model_names must be non-empty")
        self.num_devices = num_devices
        self.max_total_weight_bytes = max_total_weight_bytes
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Mixes
    # ------------------------------------------------------------------
    def sample_mix(self, size: int, max_attempts: int = 200) -> Workload:
        """Draw a feasible mix of ``size`` distinct DNNs."""
        if not 1 <= size <= len(self.model_names):
            raise ValueError(
                f"mix size must be in [1, {len(self.model_names)}], got {size}"
            )
        for _ in range(max_attempts):
            chosen = self.rng.choice(
                len(self.model_names), size=size, replace=False
            )
            names = [self.model_names[int(index)] for index in chosen]
            workload = Workload.from_names(names)
            if workload.total_weight_bytes <= self.max_total_weight_bytes:
                return workload
        raise RuntimeError(
            f"could not draw a feasible {size}-DNN mix within {max_attempts} "
            f"attempts (budget {self.max_total_weight_bytes / 1e9:.1f} GB)"
        )

    def sample_mixes(
        self, count: int, sizes: Tuple[int, ...] = (1, 2, 3, 4, 5)
    ) -> List[Workload]:
        """Draw ``count`` mixes with sizes sampled uniformly from ``sizes``."""
        mixes = []
        for _ in range(count):
            size = int(self.rng.choice(sizes))
            mixes.append(self.sample_mix(size))
        return mixes

    # ------------------------------------------------------------------
    # Mappings
    # ------------------------------------------------------------------
    def sample_mapping(
        self, workload: Workload, max_stages: Optional[int] = None
    ) -> Mapping:
        """Random contiguous mapping for a workload."""
        return random_contiguous_mapping(
            workload.models, self.num_devices, self.rng, max_stages=max_stages
        )

    def sample_training_pairs(
        self, count: int, sizes: Tuple[int, ...] = (1, 2, 3, 4, 5)
    ) -> List[Tuple[Workload, Mapping]]:
        """The paper's estimator-dataset recipe: (mix, random mapping) pairs."""
        pairs = []
        for _ in range(count):
            size = int(self.rng.choice(sizes))
            workload = self.sample_mix(size)
            pairs.append((workload, self.sample_mapping(workload)))
        return pairs
