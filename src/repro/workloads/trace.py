"""Dynamic multi-DNN workload traces: tenants arriving and departing.

The paper schedules a *fixed* mix, but the deployments it motivates
(AR headsets, smart cameras, assistant hubs) see networks come and go
continuously: a face-unlock model spins up for seconds, a navigation
backbone stays resident for minutes.  This module gives that dynamism
a value type — the :class:`ArrivalTrace`, an immutable time-ordered
sequence of :class:`ArrivalEvent` records — plus a seeded Poisson
generator (:func:`generate_trace`) and a low-level
:class:`TraceBuilder` that the named churn scenarios in
:mod:`repro.workloads.scenarios` compose.

A trace obeys three invariants, checked at construction: events are
time-ordered, every departure matches an earlier arrival of the same
tenant, and no two tenants of the *same model* are ever active at once
(the embedding representation requires distinct networks per mix, see
:class:`~repro.workloads.mix.Workload`).  Arrivals that would violate
the duplicate rule or the concurrency cap are dropped by the
generator, mirroring an admission controller.

A quick feel for the surface::

    >>> from repro.workloads.trace import TraceConfig, generate_trace
    >>> trace = generate_trace(TraceConfig(seed=7, horizon_s=30.0))
    >>> trace.events[0].kind
    'arrival'
    >>> trace == generate_trace(TraceConfig(seed=7, horizon_s=30.0))
    True
    >>> [e.kind for e in trace][:3]  # time-ordered churn
    ['arrival', 'arrival', 'arrival']

Consumers replay a trace event by event
(:class:`repro.online.OnlineScheduler`) or in coalesced same-timestamp
groups (:meth:`ArrivalTrace.grouped`, used by
:meth:`repro.service.SchedulingService.run_trace` to pool the burst's
re-searches into shared estimator batches).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..models.registry import MODEL_NAMES

__all__ = [
    "ArrivalEvent",
    "ArrivalTrace",
    "ChaosPlan",
    "FailureEvent",
    "TraceBuilder",
    "TraceConfig",
    "generate_trace",
]


@dataclass(frozen=True)
class ArrivalEvent:
    """One tenancy change: a DNN instance arriving or departing.

    ``tenant_id`` identifies the instance (one arrival, at most one
    departure); ``model`` is the zoo name it runs; ``priority`` rides
    along to the scheduler (higher = more urgent re-planning and
    reporting bucket).
    """

    time_s: float
    kind: str  # "arrival" | "departure"
    tenant_id: str
    model: str
    priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("arrival", "departure"):
            raise ValueError(
                f"kind must be 'arrival' or 'departure', got {self.kind!r}"
            )
        if self.time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")

    def to_dict(self) -> Dict:
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "tenant_id": self.tenant_id,
            "model": self.model,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArrivalEvent":
        return cls(
            time_s=float(payload["time_s"]),
            kind=str(payload["kind"]),
            tenant_id=str(payload["tenant_id"]),
            model=str(payload["model"]),
            priority=int(payload.get("priority", 0)),
        )


class ArrivalTrace:
    """An immutable, validated, time-ordered sequence of tenancy events.

    Construction enforces the trace invariants (time order, matched
    departures, no concurrent duplicate models), so every consumer can
    replay events without re-checking admission rules.
    """

    def __init__(self, events: Sequence[ArrivalEvent], name: str = "") -> None:
        self.events: Tuple[ArrivalEvent, ...] = tuple(events)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        active_models: Dict[str, str] = {}  # model -> tenant
        tenant_model: Dict[str, str] = {}
        departed: set = set()
        previous = 0.0
        for index, event in enumerate(self.events):
            if event.time_s < previous:
                raise ValueError(
                    f"event #{index} at t={event.time_s} precedes "
                    f"t={previous}; traces must be time-ordered"
                )
            previous = event.time_s
            if event.kind == "arrival":
                if event.tenant_id in tenant_model:
                    raise ValueError(
                        f"tenant {event.tenant_id!r} arrives twice"
                    )
                if event.model in active_models:
                    raise ValueError(
                        f"event #{index}: model {event.model!r} already "
                        f"active (tenant {active_models[event.model]!r}); "
                        "concurrent duplicates are not representable"
                    )
                tenant_model[event.tenant_id] = event.model
                active_models[event.model] = event.tenant_id
            else:
                if event.tenant_id not in tenant_model:
                    raise ValueError(
                        f"departure of unknown tenant {event.tenant_id!r}"
                    )
                if event.tenant_id in departed:
                    raise ValueError(
                        f"tenant {event.tenant_id!r} departs twice"
                    )
                if event.model != tenant_model[event.tenant_id]:
                    raise ValueError(
                        f"event #{index}: tenant {event.tenant_id!r} "
                        f"departs as {event.model!r} but arrived as "
                        f"{tenant_model[event.tenant_id]!r}"
                    )
                departed.add(event.tenant_id)
                active_models.pop(tenant_model[event.tenant_id], None)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> ArrivalEvent:
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrivalTrace):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name!r}, " if self.name else ""
        return f"ArrivalTrace({label}{len(self.events)} events)"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        """Time of the last event (0 for an empty trace)."""
        return self.events[-1].time_s if self.events else 0.0

    @property
    def max_concurrency(self) -> int:
        """Peak number of simultaneously active tenants."""
        active = 0
        peak = 0
        for event in self.events:
            active += 1 if event.kind == "arrival" else -1
            peak = max(peak, active)
        return peak

    def grouped(self) -> List[List[ArrivalEvent]]:
        """Events coalesced into groups sharing an identical timestamp.

        A burst of simultaneous arrivals lands in one group, which the
        service turns into concurrently driven re-searches.
        """
        groups: List[List[ArrivalEvent]] = []
        for event in self.events:
            if groups and groups[-1][-1].time_s == event.time_s:
                groups[-1].append(event)
            else:
                groups.append([event])
        return groups

    def truncated(self, max_events: int) -> "ArrivalTrace":
        """The first ``max_events`` events (tenants may never depart)."""
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        return ArrivalTrace(self.events[:max_events], name=self.name)

    # ------------------------------------------------------------------
    # Serialization (the ``serve-trace`` CLI file format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArrivalTrace":
        return cls(
            [ArrivalEvent.from_dict(entry) for entry in payload["events"]],
            name=str(payload.get("name", "")),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "ArrivalTrace":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


class TraceBuilder:
    """Admission-controlled trace assembly.

    ``add`` requests an arrival at a given time; the builder flushes
    any departures already due, drops the arrival if its model is
    still resident (or the concurrency cap is reached), and otherwise
    schedules the matching departure ``lifetime_s`` later.  ``finish``
    flushes the remaining departures and returns the validated trace.
    The churn scenarios and :func:`generate_trace` are all written on
    top of this.

    ``admission`` is an optional veto hook called as
    ``admission(time_s, model, priority, active_models) -> bool`` for
    every arrival that passes the structural checks; returning
    ``False`` drops it.  This is how a policy layer (e.g. an
    :class:`~repro.slo.AdmissionController` closure) shapes a trace at
    build time rather than replay time.  :attr:`dropped` counts every
    arrival turned away, whatever the cause.
    """

    def __init__(
        self,
        max_concurrent: Optional[int] = None,
        name: str = "",
        admission: Optional[
            Callable[[float, str, int, Tuple[str, ...]], bool]
        ] = None,
    ) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.max_concurrent = max_concurrent
        self.name = name
        self.admission = admission
        self.dropped = 0
        self._events: List[ArrivalEvent] = []
        self._active: Dict[str, str] = {}  # model -> tenant_id
        self._departures: List[Tuple[float, int, ArrivalEvent]] = []
        self._counter = 0

    def _flush_departures(self, until_s: float) -> None:
        while self._departures and self._departures[0][0] <= until_s:
            _, _, event = heapq.heappop(self._departures)
            self._events.append(event)
            self._active.pop(event.model, None)

    def advance(self, time_s: float) -> None:
        """Emit all departures due at or before ``time_s``.

        ``add`` does this implicitly; call it directly before reading
        :attr:`active_models` for a given instant.
        """
        self._flush_departures(time_s)

    def add(
        self,
        time_s: float,
        model: str,
        lifetime_s: float,
        priority: int = 0,
    ) -> Optional[str]:
        """Admit one arrival; returns its tenant id, or ``None`` if dropped."""
        if lifetime_s <= 0:
            raise ValueError(f"lifetime_s must be > 0, got {lifetime_s}")
        self._flush_departures(time_s)
        if model in self._active:
            self.dropped += 1
            return None
        if (
            self.max_concurrent is not None
            and len(self._active) >= self.max_concurrent
        ):
            self.dropped += 1
            return None
        if self.admission is not None and not self.admission(
            time_s, model, priority, self.active_models
        ):
            self.dropped += 1
            return None
        tenant_id = f"t{self._counter:04d}"
        self._counter += 1
        self._events.append(
            ArrivalEvent(time_s, "arrival", tenant_id, model, priority)
        )
        departure = ArrivalEvent(
            time_s + lifetime_s, "departure", tenant_id, model, priority
        )
        heapq.heappush(
            self._departures, (departure.time_s, self._counter, departure)
        )
        self._active[model] = tenant_id
        return tenant_id

    @property
    def active_models(self) -> Tuple[str, ...]:
        """Models resident at the latest flushed time."""
        return tuple(self._active)

    def finish(self) -> ArrivalTrace:
        """Flush all scheduled departures and return the trace."""
        self._flush_departures(float("inf"))
        return ArrivalTrace(self._events, name=self.name)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the Poisson churn generator (:func:`generate_trace`).

    ``arrival_rate`` is the Poisson intensity in arrivals/second (the
    generator draws exponential inter-arrival gaps); lifetimes are
    bounded uniform draws in ``[min_lifetime_s, max_lifetime_s]``;
    ``priorities``/``priority_weights`` set the per-request priority
    distribution.  Arrivals past ``horizon_s`` are not generated, but
    every admitted tenant still departs, so a finished trace always
    drains to an empty board.
    """

    arrival_rate: float = 0.4
    min_lifetime_s: float = 4.0
    max_lifetime_s: float = 20.0
    horizon_s: float = 60.0
    max_concurrent: int = 5
    model_pool: Tuple[str, ...] = tuple(MODEL_NAMES)
    priorities: Tuple[int, ...] = (0, 1)
    priority_weights: Optional[Tuple[float, ...]] = None
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be > 0, got {self.arrival_rate}"
            )
        if not 0 < self.min_lifetime_s <= self.max_lifetime_s:
            raise ValueError(
                "need 0 < min_lifetime_s <= max_lifetime_s, got "
                f"[{self.min_lifetime_s}, {self.max_lifetime_s}]"
            )
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {self.horizon_s}")
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if not self.model_pool:
            raise ValueError("model_pool must be non-empty")
        if not self.priorities:
            raise ValueError("priorities must be non-empty")
        if self.priority_weights is not None and (
            len(self.priority_weights) != len(self.priorities)
        ):
            raise ValueError(
                f"{len(self.priority_weights)} weights for "
                f"{len(self.priorities)} priorities"
            )


def generate_trace(
    config: Optional[TraceConfig] = None, **overrides
) -> ArrivalTrace:
    """Sample a seeded Poisson churn trace.

    ``overrides`` are :class:`TraceConfig` fields applied on top of
    ``config`` (or the defaults).  The same configuration always
    yields the same trace.
    """
    if config is None:
        config = TraceConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    rng = np.random.default_rng(config.seed)
    builder = TraceBuilder(
        max_concurrent=config.max_concurrent, name=config.name
    )
    weights = config.priority_weights
    time_s = 0.0
    while True:
        time_s += float(rng.exponential(1.0 / config.arrival_rate))
        if time_s >= config.horizon_s:
            break
        builder.advance(time_s)
        candidates = [
            model
            for model in config.model_pool
            if model not in builder.active_models
        ]
        lifetime = float(
            rng.uniform(config.min_lifetime_s, config.max_lifetime_s)
        )
        priority = int(
            rng.choice(np.asarray(config.priorities), p=weights)
        )
        if not candidates:
            continue
        model = candidates[int(rng.integers(len(candidates)))]
        builder.add(time_s, model, lifetime, priority=priority)
    return builder.finish()


# ----------------------------------------------------------------------
# Fault injection: boards dying at trace timestamps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureEvent:
    """One injected fault: a named board dying at a trace timestamp.

    The fleet replays the fault *before* the first event group whose
    timestamp is at or past ``time_s`` — the board's residents are
    orphaned at that instant and re-placed onto the survivors via warm
    re-search (:meth:`repro.fleet.FleetService.run_trace`).
    """

    time_s: float
    board: str
    kind: str = "board-failure"

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if not self.board:
            raise ValueError("board must be a non-empty name")
        if self.kind != "board-failure":
            raise ValueError(
                f"kind must be 'board-failure', got {self.kind!r}"
            )

    def to_dict(self) -> Dict:
        return {"time_s": self.time_s, "board": self.board, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FailureEvent":
        return cls(
            time_s=float(payload["time_s"]),
            board=str(payload["board"]),
            kind=str(payload.get("kind", "board-failure")),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A validated schedule of :class:`FailureEvent` faults for one replay.

    Invariants mirror :class:`ArrivalTrace`: failures are time-ordered
    and a board dies at most once.  An empty plan is the explicit no-op
    — replaying under ``ChaosPlan()`` touches no randomness and no
    estimator, so it is byte-identical to replaying with no plan at
    all (pinned by ``tests/test_fleet_elastic.py``).  A failure timed
    past the last trace event never fires.
    """

    failures: Tuple[FailureEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "failures", tuple(self.failures))
        previous = 0.0
        seen: set = set()
        for index, failure in enumerate(self.failures):
            if not isinstance(failure, FailureEvent):
                raise TypeError(
                    f"failure #{index} must be a FailureEvent, "
                    f"got {type(failure).__name__}"
                )
            if failure.time_s < previous:
                raise ValueError(
                    f"failure #{index} at t={failure.time_s} precedes "
                    f"t={previous}; chaos plans must be time-ordered"
                )
            previous = failure.time_s
            if failure.board in seen:
                raise ValueError(
                    f"board {failure.board!r} dies twice; a board can "
                    "fail at most once per plan"
                )
            seen.add(failure.board)

    @classmethod
    def kill(cls, board: str, time_s: float, name: str = "") -> "ChaosPlan":
        """The one-fault plan: ``board`` dies at ``time_s``."""
        return cls(failures=(FailureEvent(time_s, board),), name=name)

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self.failures)

    @property
    def boards(self) -> Tuple[str, ...]:
        """The boards this plan kills, in failure order."""
        return tuple(failure.board for failure in self.failures)

    # -- serialization (the ``--chaos`` CLI artifact format) -----------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosPlan":
        return cls(
            failures=tuple(
                FailureEvent.from_dict(entry)
                for entry in payload["failures"]
            ),
            name=str(payload.get("name", "")),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "ChaosPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
