"""Workloads: named mixes of concurrently executing DNNs."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from ..models.graph import ModelGraph
from ..models.registry import build_model

__all__ = ["Workload", "canonical_signature"]


def canonical_signature(names: Sequence[str]) -> Tuple[str, ...]:
    """The order-free identity of a mix: its sorted model-name tuple.

    Workload order carries no semantics (the networks run
    concurrently), so ``a+b`` and ``b+a`` are the same mix — and every
    cache, dedup set, or admission score keyed on a mix must agree on
    that.  This helper is the single sanctioned spelling; the doctrine
    linter (rule RPR005) flags hand-rolled re-derivations in the
    serving stack.
    """
    # repro: lint-ignore[RPR005] -- this IS the canonical helper
    return tuple(sorted(names))


class Workload:
    """A mix of DNNs to execute concurrently on the board.

    The paper evaluates mixes of 3, 4 and 5 concurrent DNNs drawn from
    its eleven-model dataset.  A workload is ordered (mappings align
    with it) but order carries no semantics: the networks run
    concurrently (paper Section IV-C).

    Duplicate models are rejected: the distributed embedding tensor has
    one column per dataset model, so two concurrent instances of the
    same network would collide in the mask representation.
    """

    def __init__(self, models: Sequence[ModelGraph], name: str = "") -> None:
        if not models:
            raise ValueError("a workload needs at least one DNN")
        names = [model.name for model in models]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"workload contains duplicate models: {sorted(duplicates)}; "
                "the embedding representation requires distinct networks"
            )
        self.models: Tuple[ModelGraph, ...] = tuple(models)
        self.name = name or "+".join(names)

    @classmethod
    def from_names(cls, names: Sequence[str], name: str = "") -> "Workload":
        """Build a workload from registry model names."""
        return cls([build_model(model_name) for model_name in names], name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_dnns(self) -> int:
        return len(self.models)

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(model.name for model in self.models)

    @property
    def total_weight_bytes(self) -> int:
        """Aggregate parameter footprint of the mix."""
        return sum(model.total_weight_bytes for model in self.models)

    @property
    def total_layers(self) -> int:
        """Total partition units across the mix (the MCTS decision count)."""
        return sum(model.num_layers for model in self.models)

    def __len__(self) -> int:
        return len(self.models)

    def __iter__(self) -> Iterator[ModelGraph]:
        return iter(self.models)

    def __getitem__(self, index: int) -> ModelGraph:
        return self.models[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.name!r}, {self.num_dnns} DNNs)"
