"""Fleet scheduling: many heterogeneous boards behind one service.

OmniBoost solves one HiKey970; a production deployment serves heavy
traffic from a *pool* of boards.  This package scales the serving
stack out:

* :class:`~repro.fleet.cluster.Cluster` — named heterogeneous boards
  (each a lazy :class:`~repro.builder.SystemBuilder`), assembled from
  platform presets via :meth:`~repro.fleet.cluster.Cluster.from_presets`;
* :class:`~repro.fleet.placement.FleetPlacer` — estimator-scored
  candidate placements with a greedy-load fallback, splitting mixes
  too large for any single board;
* :class:`~repro.fleet.service.FleetService` — fans requests out to
  one :class:`~repro.engine.SchedulingEngine` per board (pooled MCTS
  leaf evaluations per board), replays churn traces fleet-wide with
  cross-board re-placement, and rolls every board's counters into a
  :class:`~repro.fleet.service.FleetStats`;
* :class:`~repro.fleet.elastic.Autoscaler` — policy-driven elasticity
  (:class:`~repro.fleet.elastic.ElasticPolicy`): scale-out provisions
  preset boards (the :func:`~repro.hw.presets.cloud_tier` onload tier
  by default) under queue or attainment pressure, scale-in drains and
  retires the least-loaded safe board; chaos replays
  (:class:`~repro.workloads.trace.ChaosPlan`) kill boards mid-trace
  and recover the orphans by warm re-search.

Serving a burst across three boards::

    >>> from repro.fleet import Cluster, FleetService
    >>> from repro.workloads import Workload
    >>> cluster = Cluster.from_presets(
    ...     {"edge0": "hikey970", "edge1": "hikey970_with_npu"},
    ...     estimator={"num_training_samples": 150, "epochs": 10},
    ... )
    >>> service = FleetService(cluster)
    >>> response = service.submit(Workload.from_names(["alexnet", "vgg19"]))
    >>> print(response.board, response.expected_score)

See ``docs/fleet.md`` for the placement policy, the rebalance
semantics and the stats rollup.
"""

from .cluster import BOARD_PRESETS, Board, Cluster
from .elastic import Autoscaler, ElasticPolicy
from .placement import BoardPlacement, FleetPlacer, PlacementError
from .service import FleetResponse, FleetService, FleetStats

__all__ = [
    "Autoscaler",
    "BOARD_PRESETS",
    "Board",
    "BoardPlacement",
    "Cluster",
    "ElasticPolicy",
    "FleetPlacer",
    "FleetResponse",
    "FleetService",
    "FleetStats",
    "PlacementError",
]
