"""Named heterogeneous boards behind one roof: the :class:`Cluster`.

A fleet deployment is a set of *boards* — each its own platform, its
own kernel profile, its own trained estimator — serving one request
stream.  :class:`Board` pairs a stable name with the board's lazy
:class:`~repro.builder.SystemBuilder` (or an already-built
:class:`~repro.builder.OmniBoostSystem`): nothing is profiled or
trained at assembly time.  Under greedy-load placement a board
materializes only when a request routes there; under the default
*estimator-scored* placement, every feasible candidate's estimator is
consulted, so the first multi-candidate decision trains all feasible
boards (see :mod:`repro.fleet.placement`).
:class:`Cluster` is the ordered, name-unique collection the
:class:`~repro.fleet.FleetService` and the placement layer operate on.

:meth:`Cluster.from_presets` assembles mixed hardware from the named
platform presets (:data:`BOARD_PRESETS`) in one call::

    cluster = Cluster.from_presets(
        {
            "edge0": "hikey970",
            "edge1": "hikey970_with_npu",
            "edge2": "cpu_only_board",
        },
        seed=0,
        estimator={"num_training_samples": 150, "epochs": 10},
    )

Every board gets its own seed lane (``seed + 1000 * position``; the
first board keeps ``seed`` verbatim, which is what makes a one-board
fleet byte-identical to a plain single-board service built from the
same seed).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..builder import OmniBoostSystem, SystemBuilder
from ..core.mcts import MCTSConfig
from ..hw.platform_ import Platform
from ..hw.presets import (
    cloud_tier,
    cpu_only_board,
    hikey970,
    hikey970_with_npu,
    symmetric_board,
)

__all__ = ["BOARD_PRESETS", "Board", "Cluster"]

#: Named platform factories :meth:`Cluster.from_presets` understands.
BOARD_PRESETS: Dict[str, Callable[[], Platform]] = {
    "hikey970": hikey970,
    "hikey970_with_npu": hikey970_with_npu,
    "cpu_only_board": cpu_only_board,
    "symmetric_board": symmetric_board,
    "cloud_tier": cloud_tier,
}

#: Seed spacing between boards: wide enough that no stage seed of one
#: board (they span ``seed .. seed+7``) collides with a neighbour's.
_SEED_STRIDE = 1000


@dataclass
class Board:
    """One named board of a fleet.

    ``source`` is the board's lazy :class:`~repro.builder.SystemBuilder`
    or a pre-built :class:`~repro.builder.OmniBoostSystem`; ``preset``
    records the platform preset name when built via
    :meth:`Cluster.from_presets` (cosmetic otherwise).
    """

    name: str
    source: Union[SystemBuilder, OmniBoostSystem]
    preset: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("board name must be non-empty")
        if not isinstance(self.source, (SystemBuilder, OmniBoostSystem)):
            raise TypeError(
                "board source must be a SystemBuilder or OmniBoostSystem, "
                f"got {type(self.source).__name__}"
            )

    @property
    def platform(self) -> Platform:
        """The board's platform (materializes a builder's platform stage)."""
        return self.source.platform

    @property
    def max_residency(self) -> int:
        """How many DNNs this board can host concurrently (hard cliff)."""
        return self.platform.memory.max_residency


class Cluster:
    """An ordered, name-unique collection of :class:`Board` objects."""

    def __init__(self, boards: Sequence[Board]) -> None:
        if not boards:
            raise ValueError("a cluster needs at least one board")
        self._boards: Dict[str, Board] = {}
        #: Assembly defaults reused by :meth:`provision` so an elastic
        #: scale-out builds boards the same way :meth:`from_presets`
        #: built the originals (populated there; None otherwise).
        self.estimator_defaults: Optional[Dict] = None
        self.mcts_default: Optional[MCTSConfig] = None
        for board in boards:
            self.add_board(board)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @classmethod
    def from_presets(
        cls,
        boards: Union[Dict[str, str], Sequence[Tuple[str, str]]],
        seed: int = 0,
        estimator: Optional[Dict] = None,
        mcts_config: Optional[MCTSConfig] = None,
    ) -> "Cluster":
        """Build a cluster of preset platforms, one seed lane per board.

        ``boards`` maps board name -> preset name (insertion order is
        the cluster order).  ``estimator`` kwargs forward to each
        board's :meth:`~repro.builder.SystemBuilder.with_estimator`;
        ``mcts_config`` (applied verbatim per board) to
        :meth:`~repro.builder.SystemBuilder.with_mcts_config`.
        """
        entries = (
            list(boards.items())
            if isinstance(boards, MappingABC)
            else list(boards)
        )
        built: List[Board] = []
        for position, (name, preset) in enumerate(entries):
            if preset not in BOARD_PRESETS:
                raise KeyError(
                    f"unknown board preset {preset!r}; available: "
                    f"{', '.join(sorted(BOARD_PRESETS))}"
                )
            builder = SystemBuilder(
                seed=seed + _SEED_STRIDE * position
            ).with_platform(BOARD_PRESETS[preset]())
            if estimator is not None:
                builder.with_estimator(**estimator)
            if mcts_config is not None:
                builder.with_mcts_config(mcts_config)
            built.append(Board(name=name, source=builder, preset=preset))
        cluster = cls(built)
        cluster.estimator_defaults = dict(estimator) if estimator else None
        cluster.mcts_default = mcts_config
        return cluster

    # ------------------------------------------------------------------
    # Elasticity (the autoscaler's grow/shrink hooks)
    # ------------------------------------------------------------------
    def add_board(self, board: Board) -> None:
        """Append ``board`` to the cluster order (names stay unique)."""
        if not isinstance(board, Board):
            raise TypeError(f"expected Board, got {type(board).__name__}")
        if board.name in self._boards:
            raise ValueError(f"duplicate board name {board.name!r}")
        self._boards[board.name] = board

    def remove_board(self, name: str) -> Board:
        """Drop a board by name; a cluster never shrinks to zero."""
        board = self.board(name)
        if len(self._boards) == 1:
            raise ValueError(
                f"cannot remove {name!r}: a cluster needs at least one board"
            )
        del self._boards[name]
        return board

    def provision(self, name: str, preset: str, seed: int = 0) -> Board:
        """Build and append a fresh preset board on its own seed lane.

        Reuses the assembly defaults captured by :meth:`from_presets`
        (estimator regimen, MCTS config) so an elastically provisioned
        board is configured like its siblings; nothing is profiled or
        trained until placement first routes a request there.
        """
        if preset not in BOARD_PRESETS:
            raise KeyError(
                f"unknown board preset {preset!r}; available: "
                f"{', '.join(sorted(BOARD_PRESETS))}"
            )
        builder = SystemBuilder(seed=seed).with_platform(BOARD_PRESETS[preset]())
        if self.estimator_defaults is not None:
            builder.with_estimator(**self.estimator_defaults)
        if self.mcts_default is not None:
            builder.with_mcts_config(self.mcts_default)
        board = Board(name=name, source=builder, preset=preset)
        self.add_board(board)
        return board

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def board_names(self) -> Tuple[str, ...]:
        return tuple(self._boards)

    def board(self, name: str) -> Board:
        if name not in self._boards:
            raise KeyError(
                f"cluster has no board {name!r}; boards: "
                f"{', '.join(self._boards)}"
            )
        return self._boards[name]

    def __len__(self) -> int:
        return len(self._boards)

    def __iter__(self) -> Iterator[Board]:
        return iter(self._boards.values())

    def __contains__(self, name: str) -> bool:
        return name in self._boards

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{board.name}={board.preset or type(board.source).__name__}"
            for board in self
        )
        return f"Cluster({parts})"
