"""Cross-board placement: which board serves which mix.

The fleet's throughput lever (RankMap, "Batching or Multi-Tenancy?"):
*where* a mix lands matters as much as how its layers are mapped once
it lands.  :class:`FleetPlacer` makes that call per incoming mix:

* **Estimator-scored candidates** (the default): every feasible board
  prices the mix with its own trained
  :class:`~repro.estimator.model.ThroughputEstimator` — one
  ``predict_throughput_batch`` call over a deterministic round-robin
  *reference mapping* (each DNN pinned whole to one device, striped
  across the board's devices).  The raw score (the paper's mean
  predicted system throughput) is discounted by the board's current
  load, ``score / (1 + load)``, so similar boards spread instead of
  pile; the best effective score wins, ties broken by cluster order.
  Scoring consults the candidates' estimators, so the first
  multi-candidate decision *materializes* (profiles + trains) every
  feasible board; use ``mode="greedy-load"`` to keep boards fully
  lazy until a request actually lands on them.
* **Greedy-load fallback**: boards whose scheduler carries no
  estimator (the baselines), or a placer constructed with
  ``mode="greedy-load"``, place on the feasible board with the least
  load (ties by cluster order) — no estimator queries at all.
* **Splitting**: a mix too large for any single feasible board is
  split into chunks over *distinct* boards (the parts co-reside, so
  they cannot share a board), largest headroom first; the placement
  fails with :class:`PlacementError` only when the fleet as a whole
  cannot host the mix.

A single feasible candidate short-circuits both modes — no scoring,
no estimator touch — which is what keeps a fleet-of-one byte-identical
(decisions *and* stats counters) to a plain
:class:`~repro.service.SchedulingService`.

Feasibility is the caller's context: capacity per board (full
``max_residency`` for stateless batch serving, remaining headroom for
tenancy traces) and per-board blocked models (a model already resident
on a board cannot arrive there again — the embedding representation
requires distinct networks per mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.scheduler import OmniBoostScheduler
from ..estimator.model import EstimatorFault
from ..sim.mapping import Mapping
from ..workloads.mix import Workload

__all__ = ["BoardPlacement", "FleetPlacer", "PlacementError"]

_MODES = ("estimator", "greedy-load")


class PlacementError(RuntimeError):
    """No feasible board (or combination of boards) can host the mix."""


@dataclass(frozen=True)
class BoardPlacement:
    """One placed part of a mix: the board and the part it hosts.

    ``indices`` are the part's positions in the *original* workload
    (so a split response can be reassembled); an unsplit placement
    carries every index in order.
    """

    board: str
    indices: Tuple[int, ...]
    workload: Workload


def reference_mapping(workload: Workload, num_devices: int) -> Mapping:
    """The deterministic scoring mapping: DNNs striped whole across devices.

    Single-device rows are always legal (one stage per DNN <= any
    stage cap), and striping is the cheapest proxy for "this board's
    devices share the mix" — good enough to rank boards, three orders
    of magnitude cheaper than searching each candidate.
    """
    return Mapping(
        [
            (index % num_devices,) * model.num_layers
            for index, model in enumerate(workload.models)
        ]
    )


class FleetPlacer:
    """Scores candidate placements for a fleet of named boards.

    Parameters
    ----------
    schedulers:
        Board name -> materialized-scheduler accessor (the fleet
        passes each engine's lazy ``scheduler`` property bound per
        board); only consulted in estimator mode, and only when more
        than one board is feasible.
    order:
        Cluster board order — the deterministic tie-break.
    mode:
        ``"estimator"`` (scored, with per-decision greedy fallback) or
        ``"greedy-load"`` (never touches an estimator).
    """

    def __init__(
        self,
        schedulers,
        order: Sequence[str],
        mode: str = "estimator",
    ) -> None:
        if mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        self._schedulers = schedulers
        self.order = tuple(order)
        self.mode = mode
        #: Monotonic counters rolled into :class:`~repro.fleet.FleetStats`.
        self.placements = 0
        self.scored_placements = 0
        self.placement_evaluations = 0
        self.greedy_fallbacks = 0
        self.split_mixes = 0

    def update_order(self, order: Sequence[str]) -> None:
        """Track an elastic fleet: reset the candidate/tie-break order.

        Called by the service when a board is provisioned, drained, or
        killed; counters are untouched (they are fleet-lifetime).
        """
        self.order = tuple(order)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def place(
        self,
        workload: Workload,
        load: Dict[str, int],
        capacity: Dict[str, int],
        blocked: Optional[Dict[str, Set[str]]] = None,
    ) -> List[BoardPlacement]:
        """Place one mix: a single board when it fits, chunks otherwise.

        ``load`` drives the spreading discount (and the greedy
        fallback); ``capacity`` is each board's feasibility limit for
        *this* decision; ``blocked`` lists models a board cannot
        accept (already resident there).
        """
        blocked = blocked or {}
        self.placements += 1
        feasible = [
            name
            for name in self.order
            if workload.num_dnns <= capacity.get(name, 0)
            and not (set(workload.model_names) & blocked.get(name, set()))
        ]
        if feasible:
            board = self._choose(workload, feasible, load)
            return [
                BoardPlacement(
                    board=board,
                    indices=tuple(range(workload.num_dnns)),
                    workload=workload,
                )
            ]
        return self._split(workload, load, capacity, blocked)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _choose(
        self,
        workload: Workload,
        feasible: Sequence[str],
        load: Dict[str, int],
    ) -> str:
        """Pick one board among feasible candidates."""
        if len(feasible) == 1:
            # Short-circuit: no choice to make, no estimator to touch
            # (the fleet-of-one equivalence guarantee).
            return feasible[0]
        if self.mode == "greedy-load":
            return self._greedy(feasible, load)
        scores: List[Tuple[float, str]] = []
        for name in feasible:
            scheduler = self._schedulers(name)
            if not isinstance(scheduler, OmniBoostScheduler):
                # No estimator to score with: greedy-load decides.
                self.greedy_fallbacks += 1
                return self._greedy(feasible, load)
            mapping = reference_mapping(
                workload, scheduler.estimator.embedding.num_devices
            )
            try:
                predicted = scheduler.estimator.predict_throughput_batch(
                    [(workload, mapping)]
                )
            except EstimatorFault:
                # A faulting estimator cannot price candidates; degrade
                # this one placement to greedy-load (the board's own
                # engine ladder handles the search that follows).
                self.greedy_fallbacks += 1
                return self._greedy(feasible, load)
            self.placement_evaluations += 1
            raw = float(predicted[0].mean())
            scores.append((raw / (1.0 + load.get(name, 0)), name))
        self.scored_placements += 1
        best = max(scores, key=lambda pair: pair[0])[0]
        # Deterministic tie-break: first board (cluster order) within
        # a hair of the best effective score.
        for score, name in scores:
            if score >= best - 1e-12:
                return name
        return scores[0][1]  # pragma: no cover - unreachable

    def _greedy(self, feasible: Sequence[str], load: Dict[str, int]) -> str:
        """Least-loaded feasible board, cluster order breaking ties."""
        return min(feasible, key=lambda name: (load.get(name, 0),
                                               self.order.index(name)))

    def _split(
        self,
        workload: Workload,
        load: Dict[str, int],
        capacity: Dict[str, int],
        blocked: Dict[str, Set[str]],
    ) -> List[BoardPlacement]:
        """Chunk an oversized mix over distinct boards, headroom first."""
        remaining = list(range(workload.num_dnns))
        boards = sorted(
            self.order,
            key=lambda name: (-capacity.get(name, 0), self.order.index(name)),
        )
        parts: List[BoardPlacement] = []
        for name in boards:
            if not remaining:
                break
            room = capacity.get(name, 0)
            if room <= 0:
                continue
            taken: List[int] = []
            banned = blocked.get(name, set())
            for index in remaining:
                if len(taken) >= room:
                    break
                if workload.models[index].name in banned:
                    continue
                taken.append(index)
            if not taken:
                continue
            remaining = [i for i in remaining if i not in taken]
            parts.append(
                BoardPlacement(
                    board=name,
                    indices=tuple(taken),
                    workload=Workload(
                        [workload.models[i] for i in taken]
                    ),
                )
            )
        if remaining:
            missing = [workload.models[i].name for i in remaining]
            raise PlacementError(
                f"fleet cannot host mix {workload.name!r}: no board has "
                f"room for {missing} (capacities "
                f"{ {n: capacity.get(n, 0) for n in self.order} })"
            )
        self.split_mixes += 1
        return parts
