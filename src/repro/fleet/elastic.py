"""Policy-driven fleet elasticity: the :class:`Autoscaler`.

PR 5 gave the fleet placement and migration over a *fixed*
:class:`~repro.fleet.Cluster`; this module makes the cluster a control
variable.  An :class:`ElasticPolicy` names the scale signals and their
thresholds, and the :class:`Autoscaler` applies them once per event
group inside :meth:`repro.fleet.FleetService.run_trace`:

* **Scale-out** — when the deferred-arrival queue reaches
  ``scale_out_queue_depth``, or the windowed p95 SLO attainment
  (:class:`~repro.slo.AttainmentTracker`, the signal RankMap-style
  priority management keys on) falls below ``p95_floor``, a fresh
  board is provisioned from ``preset`` — by default the DynO-style
  :func:`~repro.hw.presets.cloud_tier` onload target — and joins the
  placement order before queued arrivals are retried.  The decision is
  **monotone in queue depth**: more load never provisions fewer boards
  (pinned in ``tests/test_fleet_elastic.py``).
* **Scale-in** — when the queue is empty and the fleet sits above its
  baseline, the least-loaded board holding at most ``drain_residency``
  residents is drained over the cross-board migration path (each
  resident warm-migrates to a surviving board) and retired.  A
  scale-in only commits if a dry-run drain plan proves every resident
  has a feasible destination *and* — under an
  :class:`~repro.slo.SLOPolicy` floor — that each resident's
  load-discounted admission score at its destination still clears the
  floor: shrinking the fleet never violates a resident's
  :class:`~repro.core.base.SLOTarget`.

Both decisions read only deterministic replay state (queue depth,
tenancy, seeded attainment ratios) — never a clock — so an elastic
replay is exactly reproducible from ``(seed, trace, policy)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional

from ..evaluation.timeline import TimelineRecord
from ..slo import AttainmentTracker
from .cluster import BOARD_PRESETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import FleetService

__all__ = ["Autoscaler", "ElasticPolicy"]


@dataclass(frozen=True)
class ElasticPolicy:
    """Thresholds governing when a fleet grows and shrinks.

    Attributes
    ----------
    preset:
        :data:`~repro.fleet.BOARD_PRESETS` name scale-outs provision
        from; the default is the :func:`~repro.hw.presets.cloud_tier`
        overflow target.
    max_boards:
        Hard ceiling on fleet size; scale-out is a no-op at the cap.
    min_boards:
        Floor for scale-in.  ``None`` means the fleet's size when the
        autoscaler attaches (the replay's baseline).
    scale_out_queue_depth:
        Deferred arrivals that trigger a scale-out.
    p95_floor:
        Scale out when the windowed p95 attainment ratio drops below
        this (``None`` disables the attainment signal; 1.0 means "95%
        of recent outcomes met their floor").
    min_attainment_samples:
        Observations the attainment window needs before its p95 is
        trusted — a cold window must not trigger a scale-out.
    drain_residency:
        A board is a scale-in candidate only while hosting at most
        this many residents (bounds the migration work of one drain).
    seed:
        Seed base for provisioned boards; board lanes continue the
        cluster's ``seed + 1000 * position`` scheme past the initial
        fleet.
    """

    preset: str = "cloud_tier"
    max_boards: int = 4
    min_boards: Optional[int] = None
    scale_out_queue_depth: int = 2
    p95_floor: Optional[float] = None
    min_attainment_samples: int = 8
    drain_residency: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.preset not in BOARD_PRESETS:
            raise KeyError(
                f"unknown board preset {self.preset!r}; available: "
                f"{', '.join(sorted(BOARD_PRESETS))}"
            )
        if self.max_boards < 1:
            raise ValueError(
                f"max_boards must be >= 1, got {self.max_boards}"
            )
        if self.min_boards is not None and self.min_boards < 1:
            raise ValueError(
                f"min_boards must be >= 1, got {self.min_boards}"
            )
        if self.scale_out_queue_depth < 1:
            raise ValueError(
                "scale_out_queue_depth must be >= 1, got "
                f"{self.scale_out_queue_depth}"
            )
        if self.p95_floor is not None and self.p95_floor <= 0:
            raise ValueError(
                f"p95_floor must be > 0, got {self.p95_floor}"
            )
        if self.min_attainment_samples < 1:
            raise ValueError(
                "min_attainment_samples must be >= 1, got "
                f"{self.min_attainment_samples}"
            )
        if self.drain_residency < 0:
            raise ValueError(
                f"drain_residency must be >= 0, got {self.drain_residency}"
            )

    def wants_scale_out(
        self, queue_depth: int, p95: Optional[float] = None
    ) -> bool:
        """Does the load picture call for another board?

        Monotone in ``queue_depth`` by construction (a single >=
        threshold), independent of everything but the two signals —
        the property the autoscaler tests pin.
        """
        if queue_depth >= self.scale_out_queue_depth:
            return True
        return (
            self.p95_floor is not None
            and p95 is not None
            and p95 < self.p95_floor
        )


class Autoscaler:
    """Applies an :class:`ElasticPolicy` to one fleet, group by group.

    Constructed per replay by
    :meth:`~repro.fleet.FleetService.run_trace` (or directly for
    manual driving); captures the fleet's current size as the
    scale-in baseline.  :meth:`step` returns the timeline records of
    whatever move it committed — a ``"scale-out"`` marker, or a
    drain's ``"drained"`` pairs plus ``"scale-in"`` marker — and at
    most one move per step, so the fleet changes by one board per
    event group.
    """

    def __init__(self, service: "FleetService", policy: ElasticPolicy) -> None:
        self.service = service
        self.policy = policy
        self.baseline_size = len(service.cluster)
        self.floor = (
            policy.min_boards
            if policy.min_boards is not None
            else self.baseline_size
        )
        self.scale_outs = 0
        self.scale_ins = 0

    def step(
        self,
        time_s: float,
        queue_depth: int,
        attainment: Optional[AttainmentTracker] = None,
        start_index: int = 0,
        record_mappings: bool = False,
    ) -> List[TimelineRecord]:
        """Decide and commit at most one scale move for this group."""
        service = self.service
        policy = self.policy
        p95 = None
        if (
            attainment is not None
            and len(attainment) >= policy.min_attainment_samples
        ):
            p95 = attainment.percentile(95)
        if len(service.cluster) < policy.max_boards and (
            policy.wants_scale_out(queue_depth, p95)
        ):
            board = service.provision_board(
                policy.preset, seed_base=policy.seed
            )
            self.scale_outs += 1
            return [
                replace(
                    service._fleet_marker(
                        time_s, "scale", board.name, "scale-out"
                    ),
                    index=start_index,
                )
            ]
        if queue_depth == 0 and len(service.cluster) > self.floor:
            victim = self._scale_in_victim()
            if victim is not None:
                moves = service._drain_and_retire(
                    victim,
                    time_s,
                    start_index,
                    record_mappings,
                    action="scale-in",
                )
                self.scale_ins += 1
                return moves
        return []

    def _scale_in_victim(self) -> Optional[str]:
        """The least-loaded provisioned board provably safe to retire.

        Only elastically provisioned boards are candidates — scale-in
        returns the rented onload tier, never the baseline edge fleet
        (the residents flow *back* to the edge, the DynO direction).
        Candidates in (load, newest-first) order; each must pass the
        dry-run drain plan (every resident has a destination) and the
        SLO safety check (:meth:`_would_violate_slo`).  ``None`` when
        no board qualifies — the fleet stays as it is.
        """
        service = self.service
        load = {
            name: len(service._tenants[name])
            for name in service.cluster.board_names
        }
        candidates = [
            name for name in load if name in service._elastic_names
        ]
        order = service.placer.order
        for name in sorted(
            candidates, key=lambda name: (load[name], -order.index(name))
        ):
            if load[name] > self.policy.drain_residency:
                break  # sorted ascending: everything after is fuller
            plan = service._drain_plan(name)
            if plan is None:
                continue
            if self._would_violate_slo(name, plan, load):
                continue
            return name
        return None

    def _would_violate_slo(self, victim, plan, load) -> bool:
        """Would executing ``plan`` break a resident's floor?

        Replays the admission math at each destination: the resident's
        cached base score discounted by the destination's load at its
        arrival (earlier migrations of the same plan included) must
        still clear the policy floor.  No floor — nothing to violate.
        """
        service = self.service
        slo = service.slo
        if slo is None:
            return False
        floor = slo.floor_for(None)
        if floor is None:
            return False
        controller = service._admission_controller()
        dest_load = {
            name: count for name, count in load.items() if name != victim
        }
        for _, model, _, dest in plan:
            effective = controller.base_score((model,)) / (
                1.0 + slo.load_penalty * dest_load[dest]
            )
            if effective < floor:
                return True
            dest_load[dest] += 1
        return False
