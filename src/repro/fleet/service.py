"""Multi-board serving: the :class:`FleetService`.

One request stream, many boards.  The fleet holds one
:class:`~repro.engine.SchedulingEngine` per :class:`~repro.fleet.Board`
(each engine: its own decision cache, pooled concurrent MCTS drive and
:class:`~repro.engine.ServiceStats`), and a
:class:`~repro.fleet.placement.FleetPlacer` that routes every incoming
mix — or the chunks of a mix too large for any one board — to a board
before any search runs.

``schedule_many`` places the whole batch first, then hands each board
its share *in one call*, so a board's requests pool their MCTS leaf
evaluations through shared
:meth:`~repro.estimator.model.ThroughputEstimator.predict_throughput_batch`
calls exactly like a single-board batch (the per-sample
batch-invariance doctrine makes the pooled decisions identical to a
sequential per-request loop; only the call count drops).  Responses
come back as :class:`FleetResponse` objects carrying board
attribution, aligned with the input order.

``run_trace`` replays an :class:`~repro.workloads.trace.ArrivalTrace`
against the fleet: each arrival is *placed* (same scored/greedy
policy, against live tenancy), each board re-plans its own changes
with warm-started searches, same-timestamp groups drive their
per-board re-searches concurrently, and a departure that leaves the
fleet imbalanced triggers a cross-board re-placement (one tenant
migrates from the most- to the least-loaded board, re-planned warm on
both).  The aggregated :class:`~repro.evaluation.TimelineReport`
interleaves every board's records in event order, each tagged with its
board name.

:meth:`FleetService.stats` returns the :class:`FleetStats` rollup:
per-board :class:`~repro.engine.ServiceStats` plus fleet-level
placement/migration counters and a combined cross-board summary.

A three-board fleet in four lines::

    >>> from repro.fleet import Cluster, FleetService
    >>> from repro.workloads import fleet_scenario
    >>> cluster = Cluster.from_presets(
    ...     {"edge0": "hikey970", "edge1": "hikey970_with_npu", "edge2": "cpu_only_board"},
    ...     estimator={"num_training_samples": 150, "epochs": 10},
    ... )
    >>> service = FleetService(cluster)
    >>> responses = service.schedule_many(fleet_scenario("request-burst").build_mixes(0))
    >>> print(service.stats().summary())
"""

from __future__ import annotations

import copy
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.base import ScheduleRequest, ScheduleResponse
from ..engine import SchedulingEngine, ServiceStats
from ..estimator.distill import FastPathPolicy
from ..evaluation.timeline import TimelineRecord, TimelineReport
from ..online import OnlineConfig, OnlineScheduler
from ..resilience import ResiliencePolicy, TraceJournal, trace_fingerprint
from ..sim.mapping import Mapping
from ..slo import (
    AdmissionController,
    AttainmentTracker,
    SLOPolicy,
    make_estimator_scorer,
    preemption_victims,
)
from ..workloads.mix import Workload
from ..workloads.trace import ArrivalEvent, ArrivalTrace, ChaosPlan
from .cluster import _SEED_STRIDE, Board, Cluster
from .elastic import Autoscaler, ElasticPolicy
from .placement import BoardPlacement, FleetPlacer, PlacementError

__all__ = ["FleetResponse", "FleetService", "FleetStats"]

#: Load imbalance (in resident DNNs) that triggers a migration.
_REBALANCE_GAP = 2


@dataclass(frozen=True)
class FleetResponse:
    """One request's fleet answer: board-attributed part responses.

    ``parts`` aligns placements with their per-board
    :class:`~repro.core.base.ScheduleResponse`; an unsplit request has
    exactly one part and the convenience accessors (:attr:`board`,
    :attr:`response`, :attr:`mapping`, :attr:`expected_score`) read
    it directly — they raise on a split response, whose parts must be
    inspected individually.

    ``admission`` is ``"admitted"`` unless a fleet
    :class:`~repro.slo.SLOPolicy` turned the request away
    (``"rejected"`` / ``"queued"``) — a non-admitted response carries
    no parts.
    """

    request_id: str
    parts: Tuple[Tuple[BoardPlacement, ScheduleResponse], ...]
    admission: str = "admitted"

    @property
    def split(self) -> bool:
        return len(self.parts) > 1

    def _single(self) -> Tuple[BoardPlacement, ScheduleResponse]:
        if not self.parts:
            raise ValueError(
                f"request was not admitted ({self.admission}); "
                "it carries no scheduling answer"
            )
        if self.split:
            boards = [placement.board for placement, _ in self.parts]
            raise ValueError(
                f"request was split across boards {boards}; inspect "
                ".parts instead of the single-board accessors"
            )
        return self.parts[0]

    @property
    def board(self) -> str:
        return self._single()[0].board

    @property
    def response(self) -> ScheduleResponse:
        return self._single()[1]

    @property
    def mapping(self) -> Mapping:
        return self.response.mapping

    @property
    def expected_score(self) -> float:
        return self.response.expected_score

    @property
    def aggregate_score(self) -> float:
        """DNN-weighted mean of the part scores (= the paper's mean
        predicted system throughput over the whole original mix)."""
        if not self.parts:
            raise ValueError(
                f"request was not admitted ({self.admission}); "
                "it has no score"
            )
        total = sum(
            response.expected_score * placement.workload.num_dnns
            for placement, response in self.parts
        )
        dnns = sum(
            placement.workload.num_dnns for placement, _ in self.parts
        )
        return total / dnns


@dataclass
class FleetStats:
    """The fleet rollup: per-board engine counters + placement counters."""

    per_board: Dict[str, ServiceStats] = field(default_factory=dict)
    #: Final counter snapshots of boards drained or killed mid-trace —
    #: :attr:`combined` sums these too, so retiring a board never
    #: un-counts the requests and waits it already served.
    retired_boards: Dict[str, ServiceStats] = field(default_factory=dict)
    requests_served: int = 0
    placements: int = 0
    scored_placements: int = 0
    placement_evaluations: int = 0
    greedy_fallbacks: int = 0
    split_requests: int = 0
    migrations: int = 0
    #: Fleet-level enforcement actions (no board involved: the
    #: admission controller turned the request away before placement).
    #: Preemptions always hit a specific board and live in that
    #: board's :class:`~repro.engine.ServiceStats`.
    rejections_by_priority: Dict[int, int] = field(default_factory=dict)
    queued_by_priority: Dict[int, int] = field(default_factory=dict)

    @property
    def combined(self) -> ServiceStats:
        """Every board's :class:`ServiceStats` summed into one view.

        The rollup covers every per-priority counter — request counts,
        waits, SLO ratios, rejections, preemptions, queue deferrals —
        plus the fleet-level admission actions (which have no board to
        live on), so ``combined`` is the one place per-priority
        service levels are complete.  Boards retired mid-trace
        (drained by the autoscaler or killed by a chaos plan) keep
        contributing through :attr:`retired_boards` — totals are
        conserved across fleet-composition changes (pinned in
        ``tests/test_fleet_elastic.py``).
        """
        total = ServiceStats()
        for stats in self.per_board.values():
            total.absorb(stats)
        for stats in self.retired_boards.values():
            total.absorb(stats)
        for source, sink in (
            (self.rejections_by_priority, total.rejections_by_priority),
            (self.queued_by_priority, total.queued_by_priority),
        ):
            for priority, count in source.items():
                sink[priority] = sink.get(priority, 0) + count
        return total

    def summary(self) -> str:
        """A one-paragraph fleet summary."""
        combined = self.combined
        boards = f"{len(self.per_board)} board(s)"
        if self.retired_boards:
            boards += f" (+{len(self.retired_boards)} retired)"
        text = (
            f"{self.requests_served} requests over "
            f"{boards}: "
            f"{self.placements} placements "
            f"({self.scored_placements} scored, "
            f"{self.placement_evaluations} placement evaluations, "
            f"{self.greedy_fallbacks} greedy fallbacks, "
            f"{self.split_requests} split, "
            f"{self.migrations} migrations); "
            f"cache hit rate {combined.cache_hit_rate:.0%}, "
            f"{combined.pooled_eval_batches} pooled estimator batches "
            f"(mean size {combined.mean_pooled_batch_size:.1f}), "
            f"{combined.estimator_queries_actual:.0f} estimator queries "
            f"paid of {combined.estimator_queries:.0f} budgeted"
        )
        if combined.requests_by_priority:
            waits = ", ".join(
                f"p{priority}: {combined.mean_wait_s(priority) * 1000:.0f}ms"
                f" ({combined.requests_by_priority[priority]})"
                for priority in sorted(combined.requests_by_priority)
            )
            text += f"; mean wait by priority {waits}"
        if combined.slo_requests:
            rejected = sum(combined.rejections_by_priority.values())
            preempted = sum(combined.preemptions_by_priority.values())
            queued = sum(combined.queued_by_priority.values())
            text += (
                f"; SLO attainment {combined.slo_attainment_rate:.0%} "
                f"over {combined.slo_requests} outcomes "
                f"({rejected} rejected, {queued} queued, "
                f"{preempted} preempted)"
            )
        return text


class FleetService:
    """Cross-board scheduling front end over a :class:`~repro.fleet.Cluster`.

    Parameters
    ----------
    cluster:
        The named boards; each gets its own lazy
        :class:`~repro.engine.SchedulingEngine` (nothing trains until
        a request is routed to the board).
    scheduler:
        Registry name answering requests on every board.
    cache_decisions:
        Per-board decision caching (same semantics as the single-board
        service).
    placement:
        ``"estimator"`` (scored candidates, greedy fallback) or
        ``"greedy-load"`` — see :class:`~repro.fleet.placement.FleetPlacer`.
    slo:
        Optional :class:`~repro.slo.SLOPolicy` serving contract.
        ``None`` (the default) keeps the fleet byte-identical to the
        pre-SLO service; an observe-only policy annotates outcomes
        without changing them; an enforcing policy gates admission in
        ``schedule_many`` and drives admission/queueing/preemption in
        ``run_trace``.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` armed on
        *every* board's engine — each board gets its own independent
        degradation ladder and fault injector (fault call counts are
        per board, matching each board's private estimator).  ``None``
        keeps every path byte-identical to the pre-resilience fleet.
    cache_shards / cache_capacity:
        Per-board decision-cache geometry (forwarded to every engine's
        :class:`~repro.frontdoor.cache.ShardedDecisionCache`).
    cache_dir:
        Root directory for persisted decision caches; each board
        snapshots under ``<cache_dir>/<board name>/`` so a restarted
        fleet replays previously-decided mixes with zero estimator
        forwards.  ``None`` keeps the caches in-memory only.
    fast_path:
        Optional :class:`~repro.estimator.distill.FastPathPolicy`
        arming the distilled pruning fast path on every board's
        engine.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: str = "omniboost",
        cache_decisions: bool = True,
        placement: str = "estimator",
        slo: Optional[SLOPolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        cache_shards: int = 4,
        cache_capacity: int = 128,
        cache_dir: Optional[str] = None,
        fast_path: Optional["FastPathPolicy"] = None,
    ) -> None:
        if not isinstance(cluster, Cluster):
            raise TypeError(
                f"cluster must be a Cluster, got {type(cluster).__name__}"
            )
        self.cluster = cluster
        self.scheduler_name = scheduler.strip().lower()
        self._cache_decisions = cache_decisions
        self._cache_shards = cache_shards
        self._cache_capacity = cache_capacity
        self._cache_dir = cache_dir
        self.fast_path = fast_path
        self.resilience = resilience
        self._engines: Dict[str, SchedulingEngine] = {}
        #: Live tenancy (run_trace): board -> tenant id -> (model, priority).
        #: Reset at the start of every replay — a trace starts from an
        #: empty fleet, exactly like the single-board engine builds a
        #: fresh OnlineScheduler per run_trace.
        self._tenants: Dict[str, Dict[str, Tuple[str, int]]] = {}
        self.placer = FleetPlacer(
            lambda name: self._engines[name].scheduler,
            order=cluster.board_names,
            mode=placement,
        )
        for board in cluster:
            self._register_board(board)
        self._requests_served = 0
        self._split_requests = 0
        self._migrations = 0
        self.slo = slo
        self._admission: Optional[AdmissionController] = None
        self._rejections_by_priority: Dict[int, int] = {}
        self._queued_by_priority: Dict[int, int] = {}
        self._tenant_board: Dict[str, str] = {}
        self._onlines: Dict[str, OnlineScheduler] = {}
        self._online_config: Optional[OnlineConfig] = None
        #: Final counter snapshots of boards retired (drained or
        #: killed) — rolled into :attr:`FleetStats.retired_boards`.
        self._retired: Dict[str, ServiceStats] = {}
        #: Seed-lane bookkeeping for elastically provisioned boards:
        #: board i of the initial fleet sits on lane ``seed + 1000*i``,
        #: so provisioned boards continue at lane ``initial_size +
        #: provisioned`` and never collide with a sibling.
        self._initial_size = len(cluster)
        self._provisioned = 0
        #: Names of live elastically provisioned boards — the only
        #: boards scale-in may retire (the onload tier returns; the
        #: baseline edge fleet stays).
        self._elastic_names: set = set()
        #: Checkpoint/resume bookkeeping for the current replay: online
        #: states restored from a journal but not yet re-materialized,
        #: boards chaos already killed, failures already fired, and the
        #: journaled report scheduler name (a fully-consumed resume
        #: materializes no scheduler to read it from).
        self._pending_online_state: Dict[str, Dict] = {}
        self._chaos_dead: List[str] = []
        self._failures_fired = 0
        self._resumed_scheduler_name = ""

    # ------------------------------------------------------------------
    # Batch serving
    # ------------------------------------------------------------------
    def engine(self, board: str) -> SchedulingEngine:
        """One board's engine (for stats or direct single-board use)."""
        if board not in self._engines:
            raise KeyError(
                f"fleet has no board {board!r}; boards: "
                f"{', '.join(self._engines)}"
            )
        return self._engines[board]

    def submit(
        self,
        request: Union[ScheduleRequest, Workload],
        **knobs,
    ) -> FleetResponse:
        """Answer one request (``knobs`` forward to :class:`ScheduleRequest`)."""
        return self.schedule_many(
            [SchedulingEngine._normalize(request, **knobs)]
        )[0]

    def schedule_many(
        self, requests: Sequence[Union[ScheduleRequest, Workload]]
    ) -> List[FleetResponse]:
        """Place, fan out and answer a batch; responses align with input.

        Placement runs first for the whole batch (load counts what the
        batch has already routed to each board, so similar boards
        spread); each board then answers its share in ONE
        ``schedule_many`` call, pooling the share's leaf evaluations.
        A board's decisions are byte-identical to serving its share
        sequentially — the fan-out changes call counts, never results.

        With an admission-enabled :class:`~repro.slo.SLOPolicy`, each
        request is first scored against the load the batch has already
        admitted; ``"rejected"`` / ``"queued"`` requests come back
        with no parts (and the matching per-priority counters tick) —
        a queued batch request is the caller's to resubmit, since a
        batch has no later timestamp to defer it to.
        """
        normalized = [SchedulingEngine._normalize(r) for r in requests]
        if not normalized:
            return []
        verdicts = self._admit_batch(normalized)
        capacity = {
            board.name: board.max_residency for board in self.cluster
        }
        load: Dict[str, int] = {name: 0 for name in self._engines}
        #: board -> list of (request position, part position, placement,
        #: sub-request) in arrival order.
        shares: Dict[str, List[Tuple[int, int, BoardPlacement, ScheduleRequest]]] = {
            name: [] for name in self._engines
        }
        placements: List[List[BoardPlacement]] = []
        for position, request in enumerate(normalized):
            if verdicts[position] != "admitted":
                placements.append([])
                continue
            parts = self.placer.place(request.workload, load, capacity)
            placements.append(parts)
            if len(parts) > 1:
                self._split_requests += 1
            for part_position, part in enumerate(parts):
                sub = (
                    request
                    if part.workload is request.workload
                    else replace(request, workload=part.workload)
                )
                shares[part.board].append(
                    (position, part_position, part, sub)
                )
                load[part.board] = load.get(part.board, 0) + part.workload.num_dnns

        answers: Dict[Tuple[int, int], ScheduleResponse] = {}
        for board, share in shares.items():
            if not share:
                continue
            responses = self._engines[board].schedule_many(
                [sub for _, _, _, sub in share]
            )
            for (position, part_position, _, _), response in zip(
                share, responses
            ):
                answers[(position, part_position)] = response

        self._requests_served += len(normalized)
        return [
            FleetResponse(
                request_id=request.request_id,
                parts=tuple(
                    (part, answers[(position, part_position)])
                    for part_position, part in enumerate(parts)
                ),
                admission=verdicts[position],
            )
            for position, (request, parts) in enumerate(
                zip(normalized, placements)
            )
        ]

    def _admit_batch(
        self, normalized: Sequence[ScheduleRequest]
    ) -> List[str]:
        """Batch admission verdicts (all ``"admitted"`` without a policy).

        Load counts what this batch has already admitted against the
        fleet's total residency, so the controller's monotonicity
        applies within a burst: once the batch fills the fleet past a
        mix's floor, every later equivalent mix is turned away too.
        """
        slo = self.slo
        if slo is None or not slo.admission:
            return ["admitted"] * len(normalized)
        controller = self._admission_controller()
        total_capacity = sum(
            board.max_residency for board in self.cluster
        )
        admitted_load = 0
        verdicts: List[str] = []
        for request in normalized:
            names = request.workload.model_names
            decision = controller.evaluate(
                names,
                load=admitted_load,
                capacity=total_capacity,
                floor=slo.floor_for(request.slo),
            )
            if decision.verdict == "admit":
                verdicts.append("admitted")
                admitted_load += len(names)
            elif decision.verdict == "queue":
                verdicts.append("queued")
                self._queued_by_priority[request.priority] = (
                    self._queued_by_priority.get(request.priority, 0) + 1
                )
            else:
                verdicts.append("rejected")
                self._rejections_by_priority[request.priority] = (
                    self._rejections_by_priority.get(request.priority, 0)
                    + 1
                )
        return verdicts

    def _admission_controller(self) -> AdmissionController:
        """The fleet's (lazy) admission controller.

        The scorer resolves the first estimator-backed board on first
        use — admission scoring is a fleet-level estimate, not a
        per-board one, and stays untouched while no floor applies.
        """
        if self._admission is None:

            def scorer(workload: Workload) -> float:
                for name in self.cluster.board_names:
                    scheduler = self._engines[name].scheduler
                    if getattr(scheduler, "estimator", None) is not None:
                        return make_estimator_scorer(scheduler)(workload)
                raise TypeError(
                    "admission scoring needs at least one "
                    "estimator-backed board"
                )

            self._admission = AdmissionController(self.slo, scorer=scorer)
        return self._admission

    def stats(self) -> FleetStats:
        """The :class:`FleetStats` rollup (snapshot; safe to mutate)."""
        return FleetStats(
            per_board={
                name: engine.stats()
                for name, engine in self._engines.items()
            },
            retired_boards=copy.deepcopy(self._retired),
            requests_served=self._requests_served,
            placements=self.placer.placements,
            scored_placements=self.placer.scored_placements,
            placement_evaluations=self.placer.placement_evaluations,
            greedy_fallbacks=self.placer.greedy_fallbacks,
            split_requests=self._split_requests,
            migrations=self._migrations,
            rejections_by_priority=dict(self._rejections_by_priority),
            queued_by_priority=dict(self._queued_by_priority),
        )

    # ------------------------------------------------------------------
    # Elasticity: boards joining and leaving a live fleet
    # ------------------------------------------------------------------
    def _register_board(self, board: Board) -> None:
        """Wire a cluster board into the fleet (engine, tenancy, order)."""
        self._engines[board.name] = SchedulingEngine(
            board.source,
            scheduler=self.scheduler_name,
            cache_decisions=self._cache_decisions,
            board=board.name,
            resilience=self.resilience,
            cache_shards=self._cache_shards,
            cache_capacity=self._cache_capacity,
            cache_dir=(
                os.path.join(self._cache_dir, board.name)
                if self._cache_dir is not None
                else None
            ),
            fast_path=self.fast_path,
        )
        self._tenants.setdefault(board.name, {})
        self.placer.update_order(self.cluster.board_names)

    def _retire_board(self, name: str) -> ServiceStats:
        """Drop an empty board, archiving its counters for the rollup."""
        if self._tenants.get(name):
            raise ValueError(
                f"board {name!r} still hosts "
                f"{len(self._tenants[name])} tenant(s); drain it first"
            )
        snapshot = self._engines[name].stats()
        if name in self._retired:
            self._retired[name].absorb(snapshot)
        else:
            self._retired[name] = snapshot
        del self._engines[name]
        self._onlines.pop(name, None)
        self._pending_online_state.pop(name, None)
        self._tenants.pop(name, None)
        self._elastic_names.discard(name)
        self.cluster.remove_board(name)
        self.placer.update_order(self.cluster.board_names)
        return snapshot

    def provision_board(
        self,
        preset: str,
        seed_base: int = 0,
        name: Optional[str] = None,
    ) -> Board:
        """Scale-out: provision a preset board and join it to the fleet.

        The new board continues the cluster's seed-lane scheme
        (``seed_base + 1000 * lane``, lanes counting past the initial
        fleet), is named ``elastic<N>`` unless overridden, and stays
        lazy — nothing profiles or trains until placement first routes
        a mix there.
        """
        if name is None:
            name = f"elastic{self._provisioned}"
        seed = seed_base + _SEED_STRIDE * (
            self._initial_size + self._provisioned
        )
        board = self.cluster.provision(name, preset, seed)
        self._provisioned += 1
        self._elastic_names.add(board.name)
        self._register_board(board)
        return board

    def drain_board(
        self,
        board: str,
        time_s: float = 0.0,
        record_mappings: bool = False,
    ) -> List[TimelineRecord]:
        """Warm-migrate every resident off ``board``, then retire it.

        Residents move in arrival order to greedy least-loaded feasible
        destinations (the cross-board migration path ``run_trace``'s
        rebalancer uses); each hop re-plans the destination through the
        warm re-search and appends a ``"drained"`` departure/arrival
        pair, followed by a ``"retired"`` marker carrying the new fleet
        size.  The board's counters are archived into
        :attr:`FleetStats.retired_boards`.  Raises
        :class:`~repro.fleet.PlacementError` when the survivors cannot
        host every resident, and ``ValueError`` on the last board.
        """
        if board not in self._engines:
            raise KeyError(
                f"fleet has no board {board!r}; boards: "
                f"{', '.join(self._engines)}"
            )
        return self._drain_and_retire(
            board, time_s, 0, record_mappings, action="retired"
        )

    def _active_models(self) -> Tuple[str, ...]:
        """Fleet-wide resident models, tenant arrival order."""
        return tuple(
            self._tenants[board][tenant_id][0]
            for tenant_id, board in self._tenant_board.items()
        )

    def _fleet_marker(
        self, time_s: float, kind: str, board: str, action: str
    ) -> TimelineRecord:
        """A composition-change marker (failure / scale) record."""
        return TimelineRecord(
            index=0,
            time_s=time_s,
            kind=kind,
            tenant_id="",
            model="",
            priority=0,
            active_models=self._active_models(),
            mode="idle",
            board=board,
            action=action,
            fleet_size=len(self.cluster),
        )

    def _drain_plan(
        self, board: str
    ) -> Optional[List[Tuple[str, str, int, str]]]:
        """Destinations for every resident of ``board``, or ``None``.

        Greedy least-loaded assignment in arrival order (cluster-order
        tie-break), honoring residency caps and the no-duplicate-model
        rule.  Pure planning — no estimator call, no state change — so
        the autoscaler can dry-run it to prove a scale-in is safe
        before committing.
        """
        load = {
            name: len(tenants)
            for name, tenants in self._tenants.items()
            if name != board
        }
        blocked = {
            name: {model for model, _ in tenants.values()}
            for name, tenants in self._tenants.items()
            if name != board
        }
        capacity = {
            entry.name: entry.max_residency
            for entry in self.cluster
            if entry.name != board
        }
        order = [name for name in self.placer.order if name != board]
        plan: List[Tuple[str, str, int, str]] = []
        for tenant_id, (model, priority) in self._tenants[board].items():
            feasible = [
                name
                for name in order
                if load[name] < capacity[name] and model not in blocked[name]
            ]
            if not feasible:
                return None
            dest = min(
                feasible, key=lambda name: (load[name], order.index(name))
            )
            plan.append((tenant_id, model, priority, dest))
            load[dest] += 1
            blocked[dest].add(model)
        return plan

    def _drain_and_retire(
        self,
        board: str,
        time_s: float,
        start_index: int,
        record_mappings: bool,
        action: str,
    ) -> List[TimelineRecord]:
        """Execute a drain plan, retire the board, emit the records."""
        plan = self._drain_plan(board)
        if plan is None:
            raise PlacementError(
                f"cannot drain {board!r}: the surviving boards cannot "
                "host every resident"
            )
        target = self.slo.target if self.slo is not None else None
        records: List[TimelineRecord] = []
        index = start_index
        for tenant_id, model, priority, dest in plan:
            del self._tenants[board][tenant_id]
            self._tenant_board.pop(tenant_id, None)
            records.append(
                TimelineRecord(
                    index=index,
                    time_s=time_s,
                    kind="departure",
                    tenant_id=tenant_id,
                    model=model,
                    priority=priority,
                    active_models=self._active_models(),
                    mode="idle",
                    board=board,
                    action="drained",
                )
            )
            index += 1
            arrival = ArrivalEvent(time_s, "arrival", tenant_id, model, priority)
            self._tenants[dest][tenant_id] = (model, priority)
            self._tenant_board[tenant_id] = dest
            job = self._engines[dest].stage_trace_event(
                self._online(dest), arrival
            )
            produced = self._engines[dest].replay_group(
                self._online(dest), [job], 0, record_mappings
            )
            record = replace(produced[0], index=index, action="drained")
            if target is not None:
                record = self._annotate_fleet(record, target)
            records.append(record)
            index += 1
            self._migrations += 1
        self._retire_board(board)
        records.append(
            replace(
                self._fleet_marker(time_s, "scale", board, action),
                index=index,
            )
        )
        return records

    def _fail_board(
        self,
        failure,
        start_index: int,
        record_mappings: bool,
        target,
    ) -> List[TimelineRecord]:
        """Kill a board mid-trace and recover its orphaned residents.

        The board vanishes instantly (no drain): its counters are
        archived, its tenants orphaned, and each orphan re-placed as a
        fresh arrival on the survivors via the normal placement path +
        warm re-search, recorded as ``"recovered"`` arrivals after the
        ``"board-failed"`` marker.
        """
        board = failure.board
        if board not in self._engines:
            raise KeyError(
                f"chaos plan kills unknown board {board!r}; live "
                f"boards: {', '.join(self._engines)}"
            )
        if len(self._engines) == 1:
            raise ValueError(
                f"chaos plan kills {board!r}, the last live board; "
                "a fleet cannot recover from losing every board"
            )
        orphans = list(self._tenants[board].items())
        for tenant_id, _ in orphans:
            self._tenant_board.pop(tenant_id, None)
        self._tenants[board].clear()
        self._retire_board(board)
        self._chaos_dead.append(board)
        records = [
            replace(
                self._fleet_marker(
                    failure.time_s, "failure", board, "board-failed"
                ),
                index=start_index,
            )
        ]
        index = start_index + 1
        for tenant_id, (model, priority) in orphans:
            arrival = ArrivalEvent(
                failure.time_s, "arrival", tenant_id, model, priority
            )
            dest = self._route_event(arrival)
            job = self._engines[dest].stage_trace_event(
                self._online(dest), arrival
            )
            produced = self._engines[dest].replay_group(
                self._online(dest), [job], 0, record_mappings
            )
            record = replace(produced[0], index=index, action="recovered")
            if target is not None:
                record = self._annotate_fleet(record, target)
            records.append(record)
            index += 1
        return records

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def run_trace(
        self,
        trace: ArrivalTrace,
        online: Optional[OnlineConfig] = None,
        record_mappings: bool = False,
        rebalance: bool = True,
        chaos: Optional[ChaosPlan] = None,
        elastic: Optional[ElasticPolicy] = None,
        checkpoint: Optional[str] = None,
    ) -> TimelineReport:
        """Replay a churn trace against the fleet.

        Arrivals are placed against live tenancy (a board never hosts
        two tenants of one model, never exceeds its residency cap);
        each board re-plans its own changes with warm-started
        re-searches, and a same-timestamp group's re-searches run
        concurrently per board with pooled evaluations.  After a group
        containing departures, ``rebalance`` migrates one tenant from
        the most- to the least-loaded board when the gap reaches two
        residents (the migration re-plans both boards warm and appends
        its departure/arrival pair to the timeline).

        Returns the aggregated fleet :class:`TimelineReport` — every
        board's records interleaved in event order, tagged with board
        names (see :attr:`TimelineReport.boards` /
        :meth:`TimelineReport.for_board`).  Each call replays from an
        empty fleet (fresh tenancy, fresh per-board warm state), so
        repeated replays are independent and deterministic.

        A fleet constructed with an enforcing
        :class:`~repro.slo.SLOPolicy` gates every arrival before
        placement: non-admittable arrivals first evict
        strictly-lower-priority residents when preemption is on (the
        evicted board re-plans warm), then are queued (retried after
        departures free capacity) or rejected.  Observe-only policies
        annotate arrival records with attainment and change nothing
        else.

        ``chaos`` injects board failures: each
        :class:`~repro.workloads.trace.FailureEvent` fires immediately
        before the first event group whose timestamp reaches it — the
        board vanishes, its counters are archived, and its orphaned
        residents are re-placed on the survivors via warm re-search
        (``"board-failed"`` marker + ``"recovered"`` arrivals).  An
        empty plan (or ``None``) changes nothing, byte-for-byte.

        ``elastic`` attaches an :class:`~repro.fleet.Autoscaler` for
        the replay: after each group (and rebalance), queue depth and
        the windowed p95 attainment feed the policy's thresholds —
        scale-out provisions a preset board before queued arrivals are
        retried, scale-in drains the least-loaded safe board back down
        to the baseline.  Chaos kills, drains, and scale-outs change
        the fleet's composition *persistently*: a later replay (or
        batch call) runs on the evolved fleet, while tenancy and warm
        state still reset per call.

        ``checkpoint`` names a crash-consistent journal file
        (:class:`~repro.resilience.TraceJournal`): every committed
        event group — its records, the fleet tenancy, each board's
        warm state and resilience counters, and how many chaos
        failures have fired — is fsynced to it, and
        :meth:`resume_trace` (on a *freshly constructed* equivalent
        fleet) continues the replay byte-identically.  Journaling is
        incompatible with ``elastic`` (scale decisions depend on
        un-checkpointed attainment windows) and with an enforcing SLO
        policy (the enforcement queue is not checkpointed); chaos
        plans are fully supported.
        """
        if checkpoint is not None:
            if elastic is not None:
                raise ValueError(
                    "checkpointing does not cover elastic fleet-"
                    "composition changes; run without an ElasticPolicy"
                )
            if self.slo is not None and self.slo.enforced:
                raise ValueError(
                    "checkpointing does not cover the SLO enforcement "
                    "queue; run with an observe-only policy or none"
                )
        self._reset_replay(online)
        journal = None
        if checkpoint is not None:
            journal = TraceJournal.create(
                checkpoint,
                self._journal_header(
                    trace, online, record_mappings, rebalance, chaos
                ),
            )
        return self._replay_trace(
            trace, record_mappings, rebalance, chaos, elastic, journal,
            skip_groups=0, prefix=(),
        )

    def resume_trace(
        self,
        trace: ArrivalTrace,
        checkpoint: str,
        online: Optional[OnlineConfig] = None,
        record_mappings: bool = False,
        rebalance: bool = True,
        chaos: Optional[ChaosPlan] = None,
    ) -> TimelineReport:
        """Continue a journaled fleet :meth:`run_trace` after a crash.

        Call it on a freshly constructed fleet equivalent to the one
        that crashed (same cluster, scheduler, resilience policy): the
        journal's completed groups are re-emitted verbatim, chaos
        kills that already fired are replayed against the fresh fleet
        (board retired, no records), tenancy / per-board warm state /
        resilience counters are restored from the last committed
        group, and the remainder — which keeps journaling into the
        same file — reproduces the uninterrupted report byte for
        byte.  Arguments must match the original call (the journal
        header pins them); a mismatch raises :class:`ValueError`.
        """
        if self.slo is not None and self.slo.enforced:
            raise ValueError(
                "checkpointing does not cover the SLO enforcement "
                "queue; run with an observe-only policy or none"
            )
        journal, header, entries = TraceJournal.resume(checkpoint)
        self._reset_replay(online)
        expected = self._journal_header(
            trace, online, record_mappings, rebalance, chaos
        )
        mismatched = [
            key
            for key, value in expected.items()
            if header.get(key) != value
        ]
        if mismatched:
            raise ValueError(
                f"journal {checkpoint} was written for a different "
                f"replay (mismatched: {', '.join(sorted(mismatched))})"
            )
        records = [
            TimelineRecord.from_dict(record)
            for entry in entries
            for record in entry["records"]
        ]
        if entries:
            self._restore_fleet_state(entries[-1]["state"])
        return self._replay_trace(
            trace, record_mappings, rebalance, chaos, None, journal,
            skip_groups=len(entries), prefix=tuple(records),
        )

    def _reset_replay(self, online: Optional[OnlineConfig]) -> None:
        """Per-replay state reset (tenancy, warm state, chaos/journal)."""
        self._online_config = online
        self._onlines = {}
        self._pending_online_state = {}
        self._tenants = {name: {} for name in self._engines}
        self._tenant_board = {}
        self._chaos_dead = []
        self._failures_fired = 0
        self._resumed_scheduler_name = ""

    def _replay_trace(
        self,
        trace: ArrivalTrace,
        record_mappings: bool,
        rebalance: bool,
        chaos: Optional[ChaosPlan],
        elastic: Optional[ElasticPolicy],
        journal: Optional[TraceJournal],
        skip_groups: int,
        prefix: Tuple[TimelineRecord, ...],
    ) -> TimelineReport:
        slo = self.slo
        enforced = slo is not None and slo.enforced
        target = slo.target if slo is not None else None
        controller = self._admission_controller() if enforced else None
        queue: List[ArrivalEvent] = []
        queued_ids: set = set()
        ghosts: set = set()
        records: List[TimelineRecord] = list(prefix)
        index = len(records)
        #: Failures the journal says already fired are not re-fired —
        #: their boards were re-retired by _restore_fleet_state.
        pending_failures = (
            list(chaos.failures)[self._failures_fired :]
            if chaos is not None
            else []
        )
        scaler = Autoscaler(self, elastic) if elastic is not None else None
        tracker = AttainmentTracker() if scaler is not None else None
        for position, group in enumerate(trace.grouped()):
            if position < skip_groups:
                continue
            group_start = len(records)
            while (
                pending_failures
                and pending_failures[0].time_s <= group[0].time_s
            ):
                failure = pending_failures.pop(0)
                self._failures_fired += 1
                produced_failure = self._fail_board(
                    failure, index, record_mappings, target
                )
                records.extend(produced_failure)
                index += len(produced_failure)
            staged: Dict[str, List] = {}
            #: ("job", board, job position, action) | ("rec", record)
            order: List[Tuple] = []

            def stage(board: str, event: ArrivalEvent, action: str) -> None:
                job = self._engines[board].stage_trace_event(
                    self._online(board), event
                )
                staged.setdefault(board, []).append(job)
                order.append(
                    ("job", board, len(staged[board]) - 1, action)
                )

            for event in group:
                if not enforced:
                    stage(self._route_event(event), event, "")
                    continue
                if event.kind == "departure":
                    if event.tenant_id in queued_ids:
                        queued_ids.discard(event.tenant_id)
                        queue[:] = [
                            e for e in queue
                            if e.tenant_id != event.tenant_id
                        ]
                        ghosts.add(event.tenant_id)
                        order.append(
                            ("rec", self._fleet_noop(event, "expired"))
                        )
                    elif event.tenant_id in ghosts:
                        order.append(
                            ("rec", self._fleet_noop(event, "dropped"))
                        )
                    else:
                        stage(self._route_event(event), event, "")
                    continue
                verdict = self._fleet_verdict(controller, event)
                # Preemption only answers load ("queue"); a "reject"
                # is load-independent and evictions cannot flip it.
                if verdict == "queue" and slo.preemption:
                    while verdict == "queue":
                        victims = preemption_victims(
                            self._fleet_residents(), event.priority
                        )
                        if not victims:
                            break
                        tenant_id, model, priority = victims[0]
                        victim_board = self._tenant_board.pop(tenant_id)
                        del self._tenants[victim_board][tenant_id]
                        eviction = ArrivalEvent(
                            event.time_s, "departure", tenant_id,
                            model, priority,
                        )
                        stage(victim_board, eviction, "preempted")
                        ghosts.add(tenant_id)
                        self._engines[victim_board]._stats.record_preemption(
                            priority
                        )
                        verdict = self._fleet_verdict(controller, event)
                if verdict == "admit" or not slo.admission:
                    stage(self._route_event(event), event, "")
                elif (
                    verdict == "queue"
                    and len(queue) < slo.queue_capacity
                ):
                    queue.append(event)
                    queued_ids.add(event.tenant_id)
                    self._queued_by_priority[event.priority] = (
                        self._queued_by_priority.get(event.priority, 0) + 1
                    )
                    order.append(
                        ("rec", self._fleet_noop(event, "queued"))
                    )
                else:
                    ghosts.add(event.tenant_id)
                    self._rejections_by_priority[event.priority] = (
                        self._rejections_by_priority.get(event.priority, 0)
                        + 1
                    )
                    order.append(
                        ("rec", self._fleet_noop(event, "rejected"))
                    )
            produced: Dict[str, List[TimelineRecord]] = {}
            for board, jobs in staged.items():
                produced[board] = self._engines[board].replay_group(
                    self._online(board), jobs, 0, record_mappings
                )
            for slot in order:
                if slot[0] == "job":
                    _, board, job_position, action = slot
                    record = replace(
                        produced[board][job_position],
                        index=index,
                        action=action,
                    )
                    if target is not None:
                        record = self._annotate_fleet(record, target)
                else:
                    record = replace(slot[1], index=index)
                records.append(record)
                index += 1
            if rebalance and any(e.kind == "departure" for e in group):
                migrated = self._rebalance(
                    group[-1].time_s, index, record_mappings
                )
                records.extend(migrated)
                index += len(migrated)
            if scaler is not None:
                for record in records[group_start:]:
                    if record.slo_ratio is not None:
                        tracker.observe(record.slo_ratio)
                moves = scaler.step(
                    group[-1].time_s,
                    queue_depth=len(queue),
                    attainment=tracker,
                    start_index=index,
                    record_mappings=record_mappings,
                )
                records.extend(moves)
                index += len(moves)
            if enforced:
                for event in list(queue):
                    if self._fleet_verdict(controller, event) != "admit":
                        continue
                    queue.remove(event)
                    queued_ids.discard(event.tenant_id)
                    retry = ArrivalEvent(
                        group[-1].time_s, "arrival", event.tenant_id,
                        event.model, event.priority,
                    )
                    board = self._route_event(retry)
                    job = self._engines[board].stage_trace_event(
                        self._online(board), retry
                    )
                    out = self._engines[board].replay_group(
                        self._online(board), [job], 0, record_mappings
                    )
                    record = replace(
                        out[0], index=index, action="dequeued"
                    )
                    if target is not None:
                        record = self._annotate_fleet(record, target)
                    records.append(record)
                    index += 1
            if journal is not None:
                journal.append_group(
                    position,
                    len(group),
                    [record.to_dict() for record in records[group_start:]],
                    self._journal_state(),
                )
        if journal is not None:
            journal.close()
        return TimelineReport(
            records=tuple(records),
            trace_name=trace.name,
            scheduler_name=self._report_scheduler_name(),
        )

    # ------------------------------------------------------------------
    # Crash-consistent journaling (checkpoint= / resume_trace)
    # ------------------------------------------------------------------
    def _report_scheduler_name(self) -> str:
        """The report's scheduler attribution.

        The first materialized engine's scheduler, falling back to the
        journaled name — a resume that found every group already
        committed never materializes a scheduler at all.
        """
        for engine in self._engines.values():
            if engine._scheduler is not None:
                return engine._scheduler.name
        return self._resumed_scheduler_name

    def _journal_header(
        self,
        trace: ArrivalTrace,
        online: Optional[OnlineConfig],
        record_mappings: bool,
        rebalance: bool,
        chaos: Optional[ChaosPlan],
    ) -> Dict:
        """What a resume must match for byte-identity to be possible.

        ``boards`` pins the fleet composition *at trace start* — a
        resume therefore needs a freshly constructed fleet, not the
        evolved survivor of the crash (chaos kills from the completed
        groups are replayed against it during restore).
        """
        return {
            "surface": "fleet",
            "boards": sorted(self._engines),
            "scheduler": self.scheduler_name,
            "record_mappings": bool(record_mappings),
            "rebalance": bool(rebalance),
            "online": asdict(self._online_config or OnlineConfig()),
            "faults": (
                self.resilience.faults.to_dict()
                if self.resilience is not None
                else None
            ),
            "chaos": (
                [failure.to_dict() for failure in chaos.failures]
                if chaos is not None
                else None
            ),
            "trace": trace_fingerprint(trace),
        }

    def _journal_state(self) -> Dict:
        """Fleet serving state as of the last committed group."""
        onlines = {
            board: online.export_state()
            for board, online in self._onlines.items()
        }
        for board, pending in self._pending_online_state.items():
            # A board restored from a journal but not touched since:
            # carry its warm state forward so a second crash+resume
            # does not lose it.
            onlines.setdefault(board, pending)
        state = {
            "tenants": {
                board: [
                    [tenant_id, model, priority]
                    for tenant_id, (model, priority) in tenants.items()
                ]
                for board, tenants in self._tenants.items()
            },
            "tenant_board": [
                [tenant_id, board]
                for tenant_id, board in self._tenant_board.items()
            ],
            "onlines": onlines,
            "failures_fired": self._failures_fired,
            "dead_boards": list(self._chaos_dead),
            "scheduler": self._report_scheduler_name(),
        }
        resilience = {
            board: snapshot
            for board, snapshot in (
                (name, engine.resilience_state())
                for name, engine in self._engines.items()
            )
            if snapshot is not None
        }
        if resilience:
            state["resilience"] = resilience
        return state

    def _restore_fleet_state(self, state: Dict) -> None:
        """Rebuild the fleet mid-trace from a journal's last state."""
        for name in state["dead_boards"]:
            if name in self._engines:
                self._tenants[name] = {}
                self._retire_board(name)
        self._chaos_dead = list(state["dead_boards"])
        self._failures_fired = int(state["failures_fired"])
        self._resumed_scheduler_name = state.get("scheduler", "")
        self._tenants = {name: {} for name in self._engines}
        for board, tenants in state["tenants"].items():
            if board in self._engines:
                self._tenants[board] = {
                    tenant_id: (model, int(priority))
                    for tenant_id, model, priority in tenants
                }
        self._tenant_board = {
            tenant_id: board
            for tenant_id, board in state["tenant_board"]
        }
        #: Applied lazily in _online() — restoring eagerly would train
        #: every board's estimator even when no group remains.
        self._pending_online_state = dict(state["onlines"])
        for board, snapshot in state.get("resilience", {}).items():
            if board in self._engines:
                self._engines[board].restore_resilience_state(snapshot)

    # ------------------------------------------------------------------
    # Trace internals
    # ------------------------------------------------------------------
    def _online(self, board: str) -> OnlineScheduler:
        if board not in self._onlines:
            self._onlines[board] = self._engines[board].make_online_scheduler(
                self._online_config
            )
            pending = self._pending_online_state.pop(board, None)
            if pending is not None:
                self._onlines[board].restore_state(pending)
        return self._onlines[board]

    def _fleet_verdict(
        self, controller: Optional[AdmissionController], event: ArrivalEvent
    ) -> str:
        """Admission verdict for one trace arrival against live tenancy.

        Feasibility (headroom somewhere, model not resident on every
        open board) is the capacity check; the floor check runs
        against the least-loaded feasible board — the board placement
        would favor — keeping the verdict monotone in fleet load.
        """
        load = {
            name: len(tenants) for name, tenants in self._tenants.items()
        }
        feasible = [
            board.name
            for board in self.cluster
            if board.max_residency - load[board.name] >= 1
            and event.model
            not in {
                model
                for model, _ in self._tenants[board.name].values()
            }
        ]
        if not feasible:
            return "queue"
        if controller is None:
            return "admit"
        return controller.evaluate(
            (event.model,),
            load=min(load[name] for name in feasible),
            capacity=None,
        ).verdict

    def _fleet_residents(self) -> Dict[str, Tuple[str, int]]:
        """Fleet-wide tenant -> (model, priority), in arrival order."""
        return {
            tenant_id: self._tenants[board][tenant_id]
            for tenant_id, board in self._tenant_board.items()
        }

    def _fleet_noop(self, event: ArrivalEvent, action: str) -> TimelineRecord:
        """A boardless no-plan record for a non-admitted event."""
        return TimelineRecord(
            index=0,
            time_s=event.time_s,
            kind=event.kind,
            tenant_id=event.tenant_id,
            model=event.model,
            priority=event.priority,
            active_models=tuple(
                self._tenants[board][tenant_id][0]
                for tenant_id, board in self._tenant_board.items()
            ),
            mode="idle",
            action=action,
        )

    def _annotate_fleet(self, record: TimelineRecord, target) -> TimelineRecord:
        """Annotate an admitted arrival against the policy target.

        Attainment is recorded into the hosting board's engine
        counters, so :attr:`FleetStats.combined` rolls it up.
        """
        if (
            record.kind != "arrival"
            or record.expected_score is None
            or target.min_throughput is None
        ):
            return record
        ratio = target.ratio(record.expected_score)
        attained = target.attained(
            record.expected_score, record.reschedule_time_s
        )
        if record.board in self._engines:
            self._engines[record.board]._stats.record_slo(
                record.priority, ratio, attained
            )
        return replace(record, slo_ratio=ratio, slo_attained=attained)

    def _route_event(self, event: ArrivalEvent) -> str:
        """Pick (arrival) or look up (departure) the event's board."""
        if event.kind == "departure":
            if event.tenant_id not in self._tenant_board:
                raise KeyError(
                    f"departure of unknown tenant {event.tenant_id!r}"
                )
            board = self._tenant_board.pop(event.tenant_id)
            del self._tenants[board][event.tenant_id]
            return board
        load = {
            name: len(tenants) for name, tenants in self._tenants.items()
        }
        capacity = {
            board.name: board.max_residency - load[board.name]
            for board in self.cluster
        }
        blocked = {
            name: {model for model, _ in tenants.values()}
            for name, tenants in self._tenants.items()
        }
        workload = Workload.from_names([event.model])
        parts = self.placer.place(workload, load, capacity, blocked)
        board = parts[0].board
        self._tenants[board][event.tenant_id] = (event.model, event.priority)
        self._tenant_board[event.tenant_id] = board
        return board

    def _rebalance(
        self, time_s: float, start_index: int, record_mappings: bool
    ) -> List[TimelineRecord]:
        """Migrate one tenant from the most- to the least-loaded board.

        Cross-board re-placement on departure: a drained board is free
        capacity the rest of the fleet cannot see — when the resident
        gap reaches ``_REBALANCE_GAP``, the most recently arrived
        migratable tenant of the fullest board moves to the emptiest
        (feasibility: the target must not host its model and must have
        headroom), and both boards re-plan warm.  The migration is
        recorded as a departure/arrival pair at the trigger timestamp.
        """
        load = {
            name: len(tenants) for name, tenants in self._tenants.items()
        }
        if len(load) < 2:
            return []
        source = max(load, key=lambda name: (load[name],
                                             -self.placer.order.index(name)))
        target = min(load, key=lambda name: (load[name],
                                             self.placer.order.index(name)))
        if load[source] - load[target] < _REBALANCE_GAP:
            return []
        headroom = self.cluster.board(target).max_residency - load[target]
        if headroom < 1:
            return []
        target_models = {
            model for model, _ in self._tenants[target].values()
        }
        candidate = None
        for tenant_id in reversed(list(self._tenants[source])):
            model, priority = self._tenants[source][tenant_id]
            if model not in target_models:
                candidate = (tenant_id, model, priority)
                break
        if candidate is None:
            return []
        tenant_id, model, priority = candidate
        departure = ArrivalEvent(time_s, "departure", tenant_id, model, priority)
        arrival = ArrivalEvent(time_s, "arrival", tenant_id, model, priority)
        del self._tenants[source][tenant_id]
        self._tenants[target][tenant_id] = (model, priority)
        self._tenant_board[tenant_id] = target
        records: List[TimelineRecord] = []
        index = start_index
        for board, event in ((source, departure), (target, arrival)):
            job = self._engines[board].stage_trace_event(
                self._online(board), event
            )
            produced = self._engines[board].replay_group(
                self._online(board), [job], 0, record_mappings
            )
            records.append(replace(produced[0], index=index))
            index += 1
        self._migrations += 1
        return records
