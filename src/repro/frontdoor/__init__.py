"""Throughput-first front door (PR 10).

Three pieces, composable but independent:

* :class:`~repro.frontdoor.ingress.AsyncFrontDoor` -- asyncio ingress
  pooling concurrent arrivals into count-based decision windows;
* :class:`~repro.frontdoor.cache.ShardedDecisionCache` -- the engine's
  bounded, sharded, restart-surviving decision cache;
* the distilled fast path lives in :mod:`repro.estimator.distill`
  (:class:`~repro.estimator.distill.FastPathPolicy`).

See ``docs/performance.md`` ("The front door") and
``docs/architecture.md`` section 17.
"""

from __future__ import annotations

from .cache import (
    ShardedDecisionCache,
    clear_cache_dir,
    estimator_cache_token,
    inspect_cache_dir,
)
from .ingress import AsyncFrontDoor, FrontDoorStats

__all__ = [
    "AsyncFrontDoor",
    "FrontDoorStats",
    "ShardedDecisionCache",
    "clear_cache_dir",
    "estimator_cache_token",
    "inspect_cache_dir",
]
