"""Async ingestion windows: concurrent callers share one pooled drive.

:class:`AsyncFrontDoor` sits in front of anything with a
``schedule_many`` batch surface (:class:`~repro.engine.SchedulingEngine`,
:class:`~repro.service.SchedulingService`,
:class:`~repro.fleet.FleetService`) and accumulates concurrently
submitted :class:`~repro.core.base.ScheduleRequest` arrivals into
*decision windows*.  A window closes when either

* it reaches ``window_size`` requests (a **full** flush), or
* the coalescing task has yielded to the event loop
  ``coalesce_ticks`` times since the window opened (a **tick**
  flush of the partial window).

Both triggers are *count-based* -- requests seen, event-loop turns
yielded -- never wall-clock reads, per the repo's determinism doctrine
(RPR002): a loaded CI runner and a fast laptop close windows after the
same number of opportunities for more work to arrive, so the decision
stream (and therefore every decision) is reproducible.

Each closed window becomes exactly one ``schedule_many`` call, so its
requests dedupe through the decision cache together and their MCTS
searches pool leaf evaluations into shared estimator batches.  At
``window_size=1`` every request flushes alone and the front door is
byte-identical to calling ``schedule_many`` directly -- the identity
contract pinned in ``tests/test_frontdoor.py``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.base import ScheduleRequest

__all__ = ["AsyncFrontDoor", "FrontDoorStats"]


@dataclass
class FrontDoorStats:
    """Ingress counters (the CI smoke job's window-size artifact)."""

    requests: int = 0
    windows: int = 0
    window_sizes: List[int] = field(default_factory=list)
    flushes: Dict[str, int] = field(
        default_factory=lambda: {"full": 0, "tick": 0, "drain": 0}
    )

    def record(self, size: int, reason: str) -> None:
        self.windows += 1
        self.window_sizes.append(size)
        self.flushes[reason] += 1

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "windows": self.windows,
            "window_sizes": list(self.window_sizes),
            "flushes": dict(self.flushes),
            "mean_window_size": (
                sum(self.window_sizes) / len(self.window_sizes)
                if self.window_sizes
                else 0.0
            ),
        }


class AsyncFrontDoor:
    """Pool concurrent arrivals into shared ``schedule_many`` windows.

    Parameters
    ----------
    service:
        Any scheduler front end exposing
        ``schedule_many(requests) -> responses`` with responses aligned
        to the request order.
    window_size:
        Requests per full window.  ``1`` disables pooling (identity
        with direct ``schedule_many`` calls).
    coalesce_ticks:
        Event-loop turns a partial window waits for more arrivals
        before flushing.  Count-based by design; see the module
        docstring.
    """

    def __init__(
        self,
        service,
        window_size: int = 4,
        coalesce_ticks: int = 16,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if coalesce_ticks < 1:
            raise ValueError("coalesce_ticks must be >= 1")
        self.service = service
        self.window_size = int(window_size)
        self.coalesce_ticks = int(coalesce_ticks)
        self.stats = FrontDoorStats()
        self._pending: List[Tuple[ScheduleRequest, "asyncio.Future"]] = []
        self._generation = 0
        self._coalescer: Optional["asyncio.Task"] = None

    # ------------------------------------------------------------------
    async def submit(self, request: ScheduleRequest):
        """Enqueue one request; resolves to its ``ScheduleResponse``."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((request, future))
        self.stats.requests += 1
        if len(self._pending) >= self.window_size:
            self._flush("full")
        elif self._coalescer is None or self._coalescer.done():
            self._coalescer = loop.create_task(self._coalesce())
        return await future

    async def _coalesce(self) -> None:
        """Flush partial windows after ``coalesce_ticks`` loop turns.

        Persistent while work is pending: a window that fills (and
        flushes) mid-wait re-arms the tick counter for the next one,
        so no partial window is ever left uncovered.
        """
        while self._pending:
            generation = self._generation
            ticks = 0
            while ticks < self.coalesce_ticks:
                await asyncio.sleep(0)
                if self._generation != generation:
                    break  # window flushed full; re-arm for the next
                ticks += 1
            else:
                if self._generation == generation and self._pending:
                    self._flush("tick")

    def _flush(self, reason: str) -> None:
        batch = self._pending
        self._pending = []
        self._generation += 1
        if not batch:
            return
        requests = [request for request, _future in batch]
        self.stats.record(len(requests), reason)
        try:
            responses = self.service.schedule_many(requests)
        except BaseException as error:
            for _request, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_request, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush any partial window immediately (shutdown path)."""
        if self._coalescer is not None and not self._coalescer.done():
            self._coalescer.cancel()
            try:
                await self._coalescer
            except asyncio.CancelledError:
                pass
        if self._pending:
            self._flush("drain")

    async def run(self, requests: Sequence[ScheduleRequest]):
        """Submit ``requests`` concurrently; responses in input order."""
        tasks = [
            asyncio.ensure_future(self.submit(request))
            for request in requests
        ]
        try:
            responses = await asyncio.gather(*tasks)
        finally:
            await self.drain()
        return list(responses)

    def serve(self, requests: Sequence[ScheduleRequest]):
        """Synchronous convenience wrapper around :meth:`run`."""
        return asyncio.run(self.run(requests))

    async def __aenter__(self) -> "AsyncFrontDoor":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.drain()
