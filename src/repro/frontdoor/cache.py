"""Bounded, sharded, restart-surviving decision cache.

The engine's decision cache started life (PR 2) as a process-local
``dict`` -- unbounded across long traces and silently dropped on every
restart.  :class:`ShardedDecisionCache` replaces it with the same
mapping semantics behind three additional properties:

* **bounded**: entries live in per-shard LRU stores
  (``num_shards x shard_capacity``); inserting past capacity evicts
  the least-recently-used entry of that shard and counts it
  (``evictions`` -> :attr:`~repro.engine.ServiceStats.cache_evictions`);
* **sharded deterministically**: the shard index is
  ``crc32(key) % num_shards`` -- *never* the builtin ``hash()``, whose
  ``PYTHONHASHSEED`` salting would scatter the same key to different
  shards across processes and break replay determinism;
* **persistent**: when constructed with a ``cache_dir`` the cache
  writes a checksummed JSON snapshot after every insert (atomic
  ``os.replace``, the ``benchmarks/.cache`` idiom) keyed by the
  estimator's :attr:`~repro.nn.layers.Module.version` *and* a digest
  of its weights, so a restarted service replays previously-decided
  mixes with zero full-estimator forwards -- and a retrained or
  re-loaded estimator (version bump) makes every persisted entry a
  miss rather than a stale decision.

A corrupt snapshot (truncated write, bit rot, or the
``--faults cache-corrupt`` drill) is detected by the embedded
checksum, quarantined under ``<file>.corrupt`` and reported so the
engine can fold it into ``ServiceStats.cache_corruptions`` -- the
serving path cold re-decides; it never serves a wrong mapping.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.base import ScheduleDecision
from ..sim.mapping import Mapping

__all__ = [
    "ShardedDecisionCache",
    "estimator_cache_token",
    "inspect_cache_dir",
    "clear_cache_dir",
]

#: One cached decision: the model-name order the mapping rows follow,
#: plus the decision itself.
CacheEntry = Tuple[Tuple[str, ...], ScheduleDecision]

#: Canonical cache key: ``(scheduler_name, canonical_signature, budget)``.
CacheKey = Tuple[str, Tuple[str, ...], Optional[int]]

SNAPSHOT_NAME = "decisions.json"
SNAPSHOT_FORMAT = 1


# ----------------------------------------------------------------------
# Estimator identity
# ----------------------------------------------------------------------
def estimator_cache_token(network) -> str:
    """``"<version>-<weights digest>"`` for a :class:`~repro.nn.layers.Module`.

    The version counter alone is not a safe persistence key: two
    *different* checkpoints each loaded once both sit at the same
    small version number, and a cache keyed on the bare integer would
    serve one checkpoint's decisions against the other's estimator.
    Folding in a CRC over the parameter bytes makes the token unique
    per weight state while staying stdlib-only.
    """
    digest = 0
    state = network.state_dict()
    for name in sorted(state):
        digest = zlib.crc32(name.encode("utf-8"), digest)
        digest = zlib.crc32(state[name].tobytes(), digest)
    return f"{int(network.version)}-{digest:08x}"


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _decision_to_dict(decision: ScheduleDecision) -> dict:
    return {
        "mapping": [list(row) for row in decision.mapping.assignments],
        "expected_score": float(decision.expected_score),
        "wall_time_s": float(decision.wall_time_s),
        "cost": {str(k): float(v) for k, v in decision.cost.items()},
    }


def _decision_from_dict(payload: dict) -> ScheduleDecision:
    return ScheduleDecision(
        mapping=Mapping(payload["mapping"]),
        expected_score=float(payload["expected_score"]),
        wall_time_s=float(payload["wall_time_s"]),
        cost={str(k): float(v) for k, v in payload["cost"].items()},
    )


def _key_to_wire(key: CacheKey) -> list:
    scheduler, signature, budget = key
    return [scheduler, list(signature), budget]


def _key_from_wire(payload: list) -> CacheKey:
    scheduler, signature, budget = payload
    return (
        str(scheduler),
        tuple(str(name) for name in signature),
        None if budget is None else int(budget),
    )


def _entries_checksum(token: str, entries: list) -> int:
    body = json.dumps([token, entries], sort_keys=True).encode("utf-8")
    return zlib.crc32(body)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ShardedDecisionCache:
    """Per-shard LRU decision store with optional disk persistence.

    Parameters
    ----------
    num_shards:
        Number of LRU shards; the shard index of a key is
        ``crc32(key) % num_shards`` (stable across processes).
    shard_capacity:
        Maximum entries per shard; inserts beyond it evict the
        shard's least-recently-used entry.
    cache_dir:
        Directory for the persisted snapshot, or ``None`` to keep the
        cache purely in-memory (the pre-PR-10 behaviour, minus the
        unbounded growth).
    """

    def __init__(
        self,
        num_shards: int = 4,
        shard_capacity: int = 128,
        cache_dir: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        self.num_shards = int(num_shards)
        self.shard_capacity = int(shard_capacity)
        self.cache_dir = cache_dir
        self._shards: List["OrderedDict[CacheKey, CacheEntry]"] = [
            OrderedDict() for _ in range(self.num_shards)
        ]
        #: Cumulative LRU evictions (``ServiceStats.cache_evictions``).
        self.evictions = 0
        #: Cumulative entries written to disk (``cache_persisted``).
        self.persisted = 0
        #: Entries restored from a valid snapshot at :meth:`bind` time.
        self.loaded = 0
        #: Snapshots found corrupt and quarantined at :meth:`bind` time.
        self.corrupt_files = 0
        #: Snapshots skipped because their token no longer matches.
        self.stale_files = 0
        self._token: Optional[str] = None
        self._bound = False

    # -- shard routing -------------------------------------------------
    @staticmethod
    def _encode_key(key: CacheKey) -> bytes:
        scheduler, signature, budget = key
        return "\x1f".join(
            [scheduler, "+".join(signature), "" if budget is None else str(budget)]
        ).encode("utf-8")

    def _shard_for(self, key: CacheKey) -> "OrderedDict[CacheKey, CacheEntry]":
        index = zlib.crc32(self._encode_key(key)) % self.num_shards
        return self._shards[index]

    def shard_index(self, key: CacheKey) -> int:
        """Deterministic shard index of ``key`` (exposed for tests)."""
        return zlib.crc32(self._encode_key(key)) % self.num_shards

    # -- mapping protocol ----------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._shard_for(key)

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """The cached entry for ``key``, refreshed to most-recent."""
        shard = self._shard_for(key)
        entry = shard.get(key)
        if entry is not None:
            shard.move_to_end(key)
        return entry

    def put(self, key: CacheKey, names: Tuple[str, ...], decision: ScheduleDecision) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        shard = self._shard_for(key)
        if key in shard:
            shard.move_to_end(key)
        shard[key] = (tuple(names), decision)
        while len(shard) > self.shard_capacity:
            shard.popitem(last=False)
            self.evictions += 1
        self._persist()

    def discard(self, key: CacheKey) -> bool:
        """Drop ``key`` from memory *and* the persisted snapshot.

        Used by the ``cache-corrupt`` fault drill: once an entry is
        declared poisoned it must not survive in either tier, or a
        restart would resurrect it.
        """
        shard = self._shard_for(key)
        if key not in shard:
            return False
        del shard[key]
        self._persist()
        return True

    def clear(self, persistent: bool = False) -> int:
        """Drop every entry; with ``persistent`` also the snapshot."""
        count = len(self)
        for shard in self._shards:
            shard.clear()
        if persistent and self.cache_dir is not None:
            path = self._snapshot_path()
            if path is not None and os.path.exists(path):
                os.remove(path)
        elif self._bound:
            self._persist()
        return count

    def items(self) -> Iterator[Tuple[CacheKey, CacheEntry]]:
        for shard in self._shards:
            yield from shard.items()

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    # -- persistence ---------------------------------------------------
    def _snapshot_path(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, SNAPSHOT_NAME)

    def bind(self, token: str) -> int:
        """Attach the estimator identity and load any valid snapshot.

        Returns the number of corrupt snapshot files quarantined (the
        engine folds it into ``ServiceStats.cache_corruptions``).
        Idempotent for a given token; re-binding with a *different*
        token (retrained estimator mid-process) drops every entry.
        """
        if self._bound and token == self._token:
            return 0
        if self._bound and token != self._token:
            for shard in self._shards:
                shard.clear()
        self._token = token
        self._bound = True
        path = self._snapshot_path()
        if path is None:
            return 0
        os.makedirs(self.cache_dir, exist_ok=True)
        if not os.path.exists(path):
            return 0
        payload = self._read_snapshot(path)
        if payload is None:
            self.corrupt_files += 1
            self._quarantine(path)
            return 1
        if payload["token"] != token:
            # A different estimator wrote this snapshot (training step
            # or load_state_dict bumped Module.version, or different
            # weights entirely).  Serving it would be a stale decision;
            # start cold and let the next insert overwrite it.
            self.stale_files += 1
            return 0
        for wire_key, names, decision_payload in payload["entries"]:
            key = _key_from_wire(wire_key)
            shard = self._shard_for(key)
            shard[key] = (
                tuple(str(n) for n in names),
                _decision_from_dict(decision_payload),
            )
            while len(shard) > self.shard_capacity:
                shard.popitem(last=False)
                self.evictions += 1
        self.loaded = len(self)
        return 0

    @property
    def bound(self) -> bool:
        return self._bound

    @property
    def token(self) -> Optional[str]:
        return self._token

    def _read_snapshot(self, path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != SNAPSHOT_FORMAT:
                return None
            token = payload["token"]
            entries = payload["entries"]
            if int(payload["checksum"]) != _entries_checksum(token, entries):
                return None
            return {"token": str(token), "entries": entries}
        except (OSError, ValueError, KeyError, TypeError):
            return None

    @staticmethod
    def _quarantine(path: str) -> None:
        quarantined = path + ".corrupt"
        if os.path.exists(quarantined):
            os.remove(quarantined)
        os.replace(path, quarantined)

    def _persist(self) -> None:
        path = self._snapshot_path()
        if path is None or not self._bound:
            return
        entries = [
            [_key_to_wire(key), list(names), _decision_to_dict(decision)]
            for key, (names, decision) in self.items()
        ]
        payload = {
            "format": SNAPSHOT_FORMAT,
            "token": self._token,
            "checksum": _entries_checksum(self._token, entries),
            "entries": entries,
        }
        os.makedirs(self.cache_dir, exist_ok=True)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
        self.persisted += len(entries)

    # -- reporting -----------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "entries": len(self),
            "num_shards": self.num_shards,
            "shard_capacity": self.shard_capacity,
            "shard_sizes": self.shard_sizes(),
            "evictions": self.evictions,
            "persisted": self.persisted,
            "loaded": self.loaded,
            "corrupt_files": self.corrupt_files,
            "stale_files": self.stale_files,
            "token": self._token,
            "cache_dir": self.cache_dir,
        }


# ----------------------------------------------------------------------
# Offline inspection (``repro cache``)
# ----------------------------------------------------------------------
def _snapshot_files(cache_dir: str) -> List[str]:
    """Every snapshot under ``cache_dir`` (fleet layouts nest per board)."""
    found = []
    for root, _dirs, files in os.walk(cache_dir):
        for name in files:
            if name == SNAPSHOT_NAME or name == SNAPSHOT_NAME + ".corrupt":
                found.append(os.path.join(root, name))
    return sorted(found)


def inspect_cache_dir(cache_dir: str) -> Dict[str, object]:
    """A JSON-friendly report over every snapshot in ``cache_dir``."""
    snapshots = []
    for path in _snapshot_files(cache_dir):
        if path.endswith(".corrupt"):
            snapshots.append({"path": path, "status": "quarantined"})
            continue
        probe = ShardedDecisionCache()
        payload = probe._read_snapshot(path)
        if payload is None:
            snapshots.append({"path": path, "status": "corrupt"})
            continue
        mixes = [
            {
                "scheduler": wire_key[0],
                "signature": list(wire_key[1]),
                "budget": wire_key[2],
                "expected_score": decision_payload["expected_score"],
            }
            for wire_key, _names, decision_payload in payload["entries"]
        ]
        snapshots.append(
            {
                "path": path,
                "status": "ok",
                "token": payload["token"],
                "entries": len(payload["entries"]),
                "decisions": mixes,
            }
        )
    return {"cache_dir": cache_dir, "snapshots": snapshots}


def clear_cache_dir(cache_dir: str) -> int:
    """Delete every snapshot (and quarantine file) under ``cache_dir``."""
    removed = 0
    for path in _snapshot_files(cache_dir):
        os.remove(path)
        removed += 1
    return removed
