"""Estimator-driven search baselines for ablating the MCTS.

The paper argues MCTS is the right way to spend a fixed budget of
estimator queries.  These schedulers spend the *same* budget
differently, so the ablation bench can isolate what the tree buys:

* :class:`RandomSearchScheduler` -- sample N random stage-capped
  mappings, keep the best by estimator reward (no structure reuse);
* :class:`GreedyImprovementScheduler` -- start from the all-GPU
  mapping and greedily re-slice one DNN at a time over a coarse menu
  of candidate slicings, keeping any improvement (local search);
* :class:`SimulatedAnnealingScheduler` -- Metropolis walk over
  single-DNN re-slicing moves with geometric cooling (global local
  search without a tree);
* :class:`ExhaustiveSearchScheduler` -- enumerate *every* stage-capped
  contiguous mapping (tiny mixes only); the optimality reference that
  Section II argues is infeasible at scale.

All share the OmniBoost estimator, never touch the board at decision
time, and report their query counts for the runtime accounting.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..estimator.model import ThroughputEstimator
from ..sim.mapping import Mapping
from ..workloads.generator import random_contiguous_mapping
from ..workloads.mix import Workload
from .base import ScheduleDecision, Scheduler

__all__ = [
    "ExhaustiveSearchScheduler",
    "GreedyImprovementScheduler",
    "RandomSearchScheduler",
    "SimulatedAnnealingScheduler",
    "enumerate_contiguous_rows",
]


class RandomSearchScheduler(Scheduler):
    """Best-of-N random mappings under the estimator.

    Candidates are scored through the estimator's vectorized batch
    path in chunks of ``eval_batch_size``.  Sampling order and query
    accounting are identical to the scalar one-query-per-candidate
    loop, and the fold keeps the *first* candidate attaining the best
    reward, matching the sequential strict-improve rule -- so the
    returned mapping matches up to float32 batch-shape rounding
    (~1e-7 in the rewards; only an exact near-tie could pick a
    different winner).
    """

    name = "RandomSearch"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        num_samples: int = 500,
        max_stages: Optional[int] = None,
        seed: int = 0,
        eval_batch_size: int = 64,
    ) -> None:
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if eval_batch_size < 1:
            raise ValueError(
                f"eval_batch_size must be >= 1, got {eval_batch_size}"
            )
        self.estimator = estimator
        self.num_samples = num_samples
        self.max_stages = max_stages
        self.seed = seed
        self.eval_batch_size = eval_batch_size

    def _decide(self, workload: Workload) -> ScheduleDecision:
        rng = np.random.default_rng(self.seed)
        num_devices = self.estimator.embedding.num_devices
        queries_before = self.estimator.query_count
        candidates = [
            random_contiguous_mapping(
                workload.models, num_devices, rng, max_stages=self.max_stages
            )
            for _ in range(self.num_samples)
        ]
        best_mapping, best_reward = _best_of_batched(
            self.estimator, workload, candidates, self.eval_batch_size
        )
        assert best_mapping is not None  # num_samples >= 1
        return ScheduleDecision(
            mapping=best_mapping,
            expected_score=float(best_reward),
            wall_time_s=0.0,
            cost={
                "estimator_queries": float(
                    self.estimator.query_count - queries_before
                )
            },
        )


def _best_of_batched(
    estimator: ThroughputEstimator,
    workload: Workload,
    candidates: Sequence[Mapping],
    eval_batch_size: int,
    best_mapping: Optional[Mapping] = None,
    best_reward: float = -np.inf,
) -> Tuple[Optional[Mapping], float]:
    """Fold batched rewards into a running best (first-max tie-break)."""
    for start in range(0, len(candidates), eval_batch_size):
        chunk = candidates[start : start + eval_batch_size]
        rewards = estimator.reward_batch(
            [(workload, mapping) for mapping in chunk]
        )
        index = int(np.argmax(rewards))
        if rewards[index] > best_reward:
            best_mapping = chunk[index]
            best_reward = float(rewards[index])
    return best_mapping, best_reward


def _candidate_rows(
    num_layers: int, num_devices: int, splits_per_pair: int
) -> List[Tuple[int, ...]]:
    """A coarse menu of 1- and 2-stage slicings for one DNN."""
    rows: List[Tuple[int, ...]] = []
    for device in range(num_devices):
        rows.append((device,) * num_layers)
    if num_layers < 2:
        return rows
    cut_points = sorted(
        {
            max(1, min(num_layers - 1, round(num_layers * fraction)))
            for fraction in np.linspace(0.2, 0.8, splits_per_pair)
        }
    )
    for first, second in itertools.permutations(range(num_devices), 2):
        for cut in cut_points:
            rows.append((first,) * cut + (second,) * (num_layers - cut))
    return rows


class GreedyImprovementScheduler(Scheduler):
    """Coordinate-descent over per-DNN slicings, scored by the estimator.

    Starts from the common all-on-GPU mapping; in each of ``passes``
    sweeps it revisits every DNN and keeps the best-scoring candidate
    slicing given the others' current assignments.  This is the
    "trial-and-error greedy" family of schedulers the related work
    section criticizes for space-exploration inefficiency.
    """

    name = "Greedy"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        start_device: int = 0,
        splits_per_pair: int = 3,
        passes: int = 2,
        eval_batch_size: int = 64,
    ) -> None:
        if splits_per_pair < 1:
            raise ValueError(f"splits_per_pair must be >= 1, got {splits_per_pair}")
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        if eval_batch_size < 1:
            raise ValueError(
                f"eval_batch_size must be >= 1, got {eval_batch_size}"
            )
        self.estimator = estimator
        self.start_device = start_device
        self.splits_per_pair = splits_per_pair
        self.passes = passes
        self.eval_batch_size = eval_batch_size

    def _decide(self, workload: Workload) -> ScheduleDecision:
        num_devices = self.estimator.embedding.num_devices
        queries_before = self.estimator.query_count
        rows: List[Tuple[int, ...]] = [
            (self.start_device,) * model.num_layers for model in workload.models
        ]
        best_reward = self.estimator.reward(workload, Mapping(rows))
        for _ in range(self.passes):
            improved = False
            for dnn_index, model in enumerate(workload.models):
                # One DNN's whole candidate menu shares the other DNNs'
                # current rows, so the scan is a pure argmax over trial
                # mappings -- batched here.  The sequential
                # strict-improve scan also ends on the first candidate
                # attaining the scan maximum, so the accepted row is
                # the same (up to float32 batch rounding); the only
                # divergence is that the old loop could waste one query
                # re-scoring the pre-scan row after an early acceptance,
                # which this filter always skips.
                candidates = [
                    candidate
                    for candidate in _candidate_rows(
                        model.num_layers, num_devices, self.splits_per_pair
                    )
                    if candidate != rows[dnn_index]
                ]
                trials = []
                for candidate in candidates:
                    trial = list(rows)
                    trial[dnn_index] = candidate
                    trials.append(Mapping(trial))
                trial_best, trial_reward = _best_of_batched(
                    self.estimator, workload, trials, self.eval_batch_size
                )
                if trial_best is not None and trial_reward > best_reward:
                    best_reward = trial_reward
                    rows = list(trial_best.assignments)
                    improved = True
            if not improved:
                break
        return ScheduleDecision(
            mapping=Mapping(rows),
            expected_score=float(best_reward),
            wall_time_s=0.0,
            cost={
                "estimator_queries": float(
                    self.estimator.query_count - queries_before
                )
            },
        )


class SimulatedAnnealingScheduler(Scheduler):
    """Metropolis search over single-DNN re-slicing moves.

    Starts from a random stage-capped mapping; each step re-slices one
    randomly chosen DNN (a fresh contiguous row) and accepts worsening
    moves with probability ``exp(delta / temperature)`` under geometric
    cooling.  Budget counts estimator queries, exactly like the MCTS
    budget, so the ablation bench can compare the two at equal cost.
    """

    name = "Annealing"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        budget: int = 500,
        max_stages: Optional[int] = None,
        initial_temperature: float = 0.5,
        cooling: float = 0.99,
        seed: int = 0,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        if not 0 < cooling < 1:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.estimator = estimator
        self.budget = budget
        self.max_stages = max_stages
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def _decide(self, workload: Workload) -> ScheduleDecision:
        rng = np.random.default_rng(self.seed)
        num_devices = self.estimator.embedding.num_devices
        queries_before = self.estimator.query_count

        current = random_contiguous_mapping(
            workload.models, num_devices, rng, max_stages=self.max_stages
        )
        current_reward = self.estimator.reward(workload, current)
        best_mapping, best_reward = current, current_reward

        # Normalize the acceptance scale to the reward magnitude so one
        # temperature setting works across mixes of any size.
        scale = max(abs(current_reward), 1e-6)
        temperature = self.initial_temperature

        for _ in range(self.budget - 1):
            dnn_index = int(rng.integers(workload.num_dnns))
            proposal_rows = [list(row) for row in current.assignments]
            proposal_rows[dnn_index] = list(
                random_contiguous_mapping(
                    [workload.models[dnn_index]],
                    num_devices,
                    rng,
                    max_stages=self.max_stages,
                ).assignments[0]
            )
            proposal = Mapping(proposal_rows)
            reward = self.estimator.reward(workload, proposal)
            delta = (reward - current_reward) / scale
            if delta >= 0 or rng.random() < np.exp(delta / max(temperature, 1e-9)):
                current, current_reward = proposal, reward
                if reward > best_reward:
                    best_mapping, best_reward = proposal, reward
            temperature *= self.cooling

        return ScheduleDecision(
            mapping=best_mapping,
            expected_score=float(best_reward),
            wall_time_s=0.0,
            cost={
                "estimator_queries": float(
                    self.estimator.query_count - queries_before
                )
            },
        )


def enumerate_contiguous_rows(
    num_layers: int, num_devices: int, max_stages: int
) -> Iterator[Tuple[int, ...]]:
    """Yield every contiguous stage-capped row for one DNN.

    A row is a choice of stage count ``s <= max_stages``, ``s - 1``
    distinct ordered cut positions and a device per stage with no two
    adjacent stages on the same device.
    """
    if num_layers < 1:
        raise ValueError(f"num_layers must be >= 1, got {num_layers}")
    max_stages = max(1, min(max_stages, num_devices, num_layers))
    for stage_count in range(1, max_stages + 1):
        for cuts in itertools.combinations(range(1, num_layers), stage_count - 1):
            boundaries = (0,) + cuts + (num_layers,)
            for devices in itertools.product(range(num_devices), repeat=stage_count):
                if any(a == b for a, b in zip(devices, devices[1:])):
                    continue
                row: Tuple[int, ...] = ()
                for device, start, end in zip(
                    devices, boundaries, boundaries[1:]
                ):
                    row += (device,) * (end - start)
                yield row


class ExhaustiveSearchScheduler(Scheduler):
    """Enumerate the whole stage-capped space (tiny mixes only).

    This is the "greedy search [that] is infeasible" of Section II made
    concrete: the space is the product of every DNN's contiguous
    slicings, so the scheduler refuses mixes whose space exceeds
    ``max_evaluations``.  Tests use it as the optimality reference for
    MCTS on small mixes.
    """

    name = "Exhaustive"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        max_stages: Optional[int] = None,
        max_evaluations: int = 200_000,
        eval_batch_size: int = 128,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1, got {max_evaluations}"
            )
        if eval_batch_size < 1:
            raise ValueError(
                f"eval_batch_size must be >= 1, got {eval_batch_size}"
            )
        self.estimator = estimator
        self.max_stages = max_stages
        self.max_evaluations = max_evaluations
        self.eval_batch_size = eval_batch_size

    def _decide(self, workload: Workload) -> ScheduleDecision:
        num_devices = self.estimator.embedding.num_devices
        max_stages = self.max_stages or num_devices
        per_dnn = [
            list(
                enumerate_contiguous_rows(
                    model.num_layers, num_devices, max_stages
                )
            )
            for model in workload.models
        ]
        space = 1
        for rows in per_dnn:
            space *= len(rows)
        if space > self.max_evaluations:
            raise ValueError(
                f"mapping space of {space:,} exceeds max_evaluations="
                f"{self.max_evaluations:,}; exhaustive search is what the "
                "paper's Section II rules out at this scale"
            )
        queries_before = self.estimator.query_count
        best_mapping: Optional[Mapping] = None
        best_reward = -np.inf
        # Batched evaluation: one vectorized forward pass per chunk
        # instead of one scalar query per mapping.
        chunk: List[Mapping] = []
        for rows in itertools.product(*per_dnn):
            chunk.append(Mapping([list(row) for row in rows]))
            if len(chunk) == self.eval_batch_size:
                best_mapping, best_reward = _best_of_batched(
                    self.estimator,
                    workload,
                    chunk,
                    self.eval_batch_size,
                    best_mapping,
                    best_reward,
                )
                chunk = []
        if chunk:
            best_mapping, best_reward = _best_of_batched(
                self.estimator,
                workload,
                chunk,
                self.eval_batch_size,
                best_mapping,
                best_reward,
            )
        assert best_mapping is not None  # space >= 1 always
        return ScheduleDecision(
            mapping=best_mapping,
            expected_score=float(best_reward),
            wall_time_s=0.0,
            cost={
                "estimator_queries": float(
                    self.estimator.query_count - queries_before
                )
            },
        )
