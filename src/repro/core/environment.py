"""The scheduling environment: states, actions, rewards (paper IV-C).

A Gym-like episodic environment over partial mappings:

* **State** -- the per-layer device assignments made so far, in
  decision order: DNNs are scheduled one after another; within a DNN,
  the first decision pins layer 1 (conceptually the whole network, as
  the paper notes), then layers 2..n are assigned one by one.
* **Action** -- a device id (3 actions on HiKey970, one per computing
  component).
* **Terminal states** -- *winning* when every layer of every DNN is
  assigned; *losing* when a DNN's pipeline exceeds the stage cap
  (``x`` = number of computing components), which the paper penalizes
  to avoid redundant pipeline stages and their data transfers.

Two enforcement modes for the stage cap exist because the ablation
benches compare them: ``mask_illegal=True`` (default) removes
cap-violating actions from the legal set, so rollouts always reach a
winning state; ``False`` reproduces the paper's formulation verbatim,
where violating actions lead to losing leaves with a static penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.mapping import Mapping
from ..workloads.mix import Workload

__all__ = ["SchedulingState", "SchedulingEnv", "LOSS_REWARD", "WIN_BONUS"]

#: Static reward of a losing leaf (paper: "exceptionally" bad).
LOSS_REWARD = -1.0
#: Additive bonus of reaching a winning (complete) state, on top of the
#: estimator's throughput reward.
WIN_BONUS = 0.0


@dataclass(frozen=True)
class SchedulingState:
    """An immutable partial assignment.

    ``assigned`` stores one tuple of device ids per DNN; the DNN under
    construction is the first whose tuple is shorter than its layer
    count.
    """

    assigned: Tuple[Tuple[int, ...], ...]

    def key(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable identity of the state (used by tree nodes)."""
        return self.assigned


class SchedulingEnv:
    """Episodic environment the MCTS explores.

    Parameters
    ----------
    workload:
        The mix to schedule.
    num_devices:
        Number of computing components (= action count).
    stage_cap:
        Maximum pipeline stages per DNN before a state is losing.
        Defaults to ``num_devices`` as in the paper.
    mask_illegal:
        If True, actions that would breach the stage cap are simply not
        legal; if False they are legal but lead to losing states.
    """

    def __init__(
        self,
        workload: Workload,
        num_devices: int,
        stage_cap: Optional[int] = None,
        mask_illegal: bool = True,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.workload = workload
        self.num_devices = num_devices
        self.stage_cap = stage_cap if stage_cap is not None else num_devices
        if self.stage_cap < 1:
            raise ValueError(f"stage_cap must be >= 1, got {self.stage_cap}")
        self.mask_illegal = mask_illegal
        self._layer_counts = tuple(model.num_layers for model in workload.models)

    # ------------------------------------------------------------------
    # Episode protocol
    # ------------------------------------------------------------------
    def reset(self) -> SchedulingState:
        """The empty assignment."""
        return SchedulingState(tuple(() for _ in self._layer_counts))

    @property
    def total_decisions(self) -> int:
        """Episode length: one decision per layer of every DNN."""
        return sum(self._layer_counts)

    def decisions_made(self, state: SchedulingState) -> int:
        return sum(len(row) for row in state.assigned)

    def current_dnn(self, state: SchedulingState) -> Optional[int]:
        """Index of the DNN receiving the next decision (None if done)."""
        for index, row in enumerate(state.assigned):
            if len(row) < self._layer_counts[index]:
                return index
        return None

    def is_complete(self, state: SchedulingState) -> bool:
        """Winning state: every layer assigned."""
        return self.current_dnn(state) is None

    def is_losing(self, state: SchedulingState) -> bool:
        """Losing state: some DNN exceeds the stage cap."""
        return any(
            _stage_count(row) > self.stage_cap for row in state.assigned if row
        )

    def is_terminal(self, state: SchedulingState) -> bool:
        return self.is_complete(state) or self.is_losing(state)

    def legal_actions(self, state: SchedulingState) -> List[int]:
        """Device ids playable from ``state``.

        With masking on, a DNN already at the stage cap may only keep
        extending its current stage (continuing on the same device).
        """
        dnn = self.current_dnn(state)
        if dnn is None or self.is_losing(state):
            return []
        row = state.assigned[dnn]
        actions = list(range(self.num_devices))
        if not self.mask_illegal or not row:
            return actions
        if _stage_count(row) >= self.stage_cap:
            return [row[-1]]
        return actions

    def step(self, state: SchedulingState, action: int) -> SchedulingState:
        """Assign the next layer of the current DNN to ``action``."""
        if not 0 <= action < self.num_devices:
            raise ValueError(
                f"action {action} out of range for {self.num_devices} devices"
            )
        dnn = self.current_dnn(state)
        if dnn is None:
            raise RuntimeError("cannot step a completed episode")
        if self.mask_illegal and action not in self.legal_actions(state):
            raise ValueError(
                f"action {action} is illegal in this state (stage cap "
                f"{self.stage_cap})"
            )
        rows = list(state.assigned)
        rows[dnn] = rows[dnn] + (action,)
        return SchedulingState(tuple(rows))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def mapping(self, state: SchedulingState) -> Mapping:
        """The complete mapping of a winning state."""
        if not self.is_complete(state):
            raise ValueError("cannot decode a mapping from an incomplete state")
        return Mapping(state.assigned)


def _stage_count(row: Sequence[int]) -> int:
    """Pipeline stages of a (possibly partial) assignment row."""
    if not row:
        return 0
    return 1 + sum(1 for a, b in zip(row, row[1:]) if a != b)
