"""OmniBoost core: scheduling environment, MCTS and the scheduler facade."""

from .base import (
    ScheduleDecision,
    ScheduleRequest,
    ScheduleResponse,
    Scheduler,
    SLOTarget,
)
from .environment import LOSS_REWARD, WIN_BONUS, SchedulingEnv, SchedulingState
from .mcts import MCTSConfig, MCTSNode, MCTSResult, MonteCarloTreeSearch
from .objectives import (
    EnergyAwareObjective,
    SchedulingObjective,
    ThroughputObjective,
)
from .registry import (
    available_schedulers,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from .scheduler import OmniBoostScheduler
from .search_baselines import (
    ExhaustiveSearchScheduler,
    GreedyImprovementScheduler,
    RandomSearchScheduler,
    SimulatedAnnealingScheduler,
    enumerate_contiguous_rows,
)

__all__ = [
    "EnergyAwareObjective",
    "ExhaustiveSearchScheduler",
    "LOSS_REWARD",
    "MCTSConfig",
    "MCTSNode",
    "MCTSResult",
    "MonteCarloTreeSearch",
    "GreedyImprovementScheduler",
    "OmniBoostScheduler",
    "RandomSearchScheduler",
    "SimulatedAnnealingScheduler",
    "available_schedulers",
    "enumerate_contiguous_rows",
    "get_scheduler",
    "register_scheduler",
    "ScheduleDecision",
    "ScheduleRequest",
    "ScheduleResponse",
    "Scheduler",
    "SLOTarget",
    "SchedulingEnv",
    "SchedulingObjective",
    "SchedulingState",
    "ThroughputObjective",
    "unregister_scheduler",
    "WIN_BONUS",
]
