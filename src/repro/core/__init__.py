"""OmniBoost core: scheduling environment, MCTS and the scheduler facade."""

from .base import ScheduleDecision, Scheduler
from .environment import LOSS_REWARD, WIN_BONUS, SchedulingEnv, SchedulingState
from .mcts import MCTSConfig, MCTSNode, MCTSResult, MonteCarloTreeSearch
from .objectives import (
    EnergyAwareObjective,
    SchedulingObjective,
    ThroughputObjective,
)
from .scheduler import OmniBoostScheduler
from .search_baselines import (
    ExhaustiveSearchScheduler,
    GreedyImprovementScheduler,
    RandomSearchScheduler,
    SimulatedAnnealingScheduler,
    enumerate_contiguous_rows,
)

__all__ = [
    "EnergyAwareObjective",
    "ExhaustiveSearchScheduler",
    "LOSS_REWARD",
    "MCTSConfig",
    "MCTSNode",
    "MCTSResult",
    "MonteCarloTreeSearch",
    "GreedyImprovementScheduler",
    "OmniBoostScheduler",
    "RandomSearchScheduler",
    "SimulatedAnnealingScheduler",
    "enumerate_contiguous_rows",
    "ScheduleDecision",
    "Scheduler",
    "SchedulingEnv",
    "SchedulingObjective",
    "SchedulingState",
    "ThroughputObjective",
    "WIN_BONUS",
]
