"""Common scheduler interface shared by OmniBoost and the baselines."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from ..sim.mapping import Mapping
from ..workloads.mix import Workload

__all__ = ["ScheduleDecision", "Scheduler"]


@dataclass(frozen=True)
class ScheduleDecision:
    """A scheduler's answer for one workload.

    Attributes
    ----------
    mapping:
        The chosen layer-to-device assignment.
    expected_score:
        The scheduler's own internal score of the mapping (estimator
        reward, GA fitness, predicted latency...); scales differ
        between schedulers and are not comparable across them.
    wall_time_s:
        Host seconds spent deciding.
    cost:
        Decision-cost accounting for the paper's Section V-B run-time
        analysis, e.g. ``{"estimator_queries": 500}`` or
        ``{"board_measurements": 1500}``.
    """

    mapping: Mapping
    expected_score: float
    wall_time_s: float
    cost: Dict[str, float] = field(default_factory=dict)


class Scheduler:
    """Base class: subclasses implement :meth:`_decide`."""

    #: Human-readable scheduler name used in reports and figures.
    name: str = "scheduler"

    def schedule(self, workload: Workload) -> ScheduleDecision:
        """Produce a mapping for ``workload`` (timed)."""
        started = time.perf_counter()
        decision = self._decide(workload)
        elapsed = time.perf_counter() - started
        if decision.wall_time_s == 0.0:
            decision = ScheduleDecision(
                mapping=decision.mapping,
                expected_score=decision.expected_score,
                wall_time_s=elapsed,
                cost=decision.cost,
            )
        return decision

    def _decide(self, workload: Workload) -> ScheduleDecision:  # pragma: no cover
        raise NotImplementedError
