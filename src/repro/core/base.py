"""Common scheduler interface shared by OmniBoost and the baselines.

Two surfaces live here:

* the classic one-shot call — :meth:`Scheduler.schedule` takes a
  :class:`~repro.workloads.mix.Workload` and returns a
  :class:`ScheduleDecision` (kept verbatim for back compatibility);
* the typed request/response protocol — :meth:`Scheduler.respond`
  takes a :class:`ScheduleRequest` carrying per-call knobs (objective,
  budget override, priority, request id) and returns a
  :class:`ScheduleResponse` wrapping the decision with scheduler
  identity, cache status and the *host-measured* wall time.

The response's ``measured_wall_time_s`` is always the host-clock
elapsed time around the decision, recorded unconditionally — unlike
``ScheduleDecision.wall_time_s``, which a scheduler may self-report
(and which :meth:`Scheduler.schedule` historically only back-filled
when it was exactly ``0.0``).  Keeping the two in separate fields
means a scheduler's self-reported timing can never be conflated with
what the host actually observed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional

from ..sim.mapping import Mapping
from ..workloads.mix import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .objectives import SchedulingObjective

__all__ = [
    "ScheduleDecision",
    "ScheduleRequest",
    "ScheduleResponse",
    "Scheduler",
    "SLOTarget",
]


@dataclass(frozen=True)
class SLOTarget:
    """A per-request service-level objective.

    Attributes
    ----------
    min_throughput:
        Floor on the decision's ``expected_score`` (the scheduler's
        predicted mean throughput, estimator-score units).  Purely a
        function of the seeded search, so attainment against the floor
        is deterministic — the gateable half of the contract.
    max_latency_s:
        Bound on the host-measured decision latency
        (``measured_wall_time_s`` / ``reschedule_time_s``).  Wall-clock
        and therefore machine-dependent: reported in attainment stats,
        never gated in tests (the single-core CI rule).

    At least one bound must be set.  ``ratio``/``attained`` fold an
    observed outcome against the contract; a request whose throughput
    ratio is >= 1.0 (and within the latency bound, when one is set)
    attained its SLO.
    """

    min_throughput: Optional[float] = None
    max_latency_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_throughput is None and self.max_latency_s is None:
            raise ValueError(
                "an SLOTarget needs a throughput floor and/or a "
                "latency bound"
            )
        if self.min_throughput is not None and self.min_throughput <= 0:
            raise ValueError(
                f"min_throughput must be > 0, got {self.min_throughput}"
            )
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ValueError(
                f"max_latency_s must be > 0, got {self.max_latency_s}"
            )

    def ratio(self, expected_score: float) -> Optional[float]:
        """Throughput attainment ratio (``None`` without a floor)."""
        if self.min_throughput is None:
            return None
        return expected_score / self.min_throughput

    def attained(self, expected_score: float, latency_s: float) -> bool:
        """Did an outcome honor every bound this target sets?"""
        ratio = self.ratio(expected_score)
        if ratio is not None and ratio < 1.0:
            return False
        if self.max_latency_s is not None and latency_s > self.max_latency_s:
            return False
        return True


@dataclass(frozen=True)
class ScheduleDecision:
    """A scheduler's answer for one workload.

    Attributes
    ----------
    mapping:
        The chosen layer-to-device assignment.
    expected_score:
        The scheduler's own internal score of the mapping (estimator
        reward, GA fitness, predicted latency...); scales differ
        between schedulers and are not comparable across them.
    wall_time_s:
        Host seconds spent deciding.
    cost:
        Decision-cost accounting for the paper's Section V-B run-time
        analysis, e.g. ``{"estimator_queries": 500}`` or
        ``{"board_measurements": 1500}``.
    """

    mapping: Mapping
    expected_score: float
    wall_time_s: float
    cost: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling query, with its per-call knobs.

    Attributes
    ----------
    workload:
        The mix to map.
    objective:
        Optional :class:`~repro.core.objectives.SchedulingObjective`
        override for this request only; ``None`` keeps the scheduler's
        configured objective (the paper's throughput reward for
        OmniBoost).  Schedulers without a pluggable objective ignore
        it.
    budget:
        Optional search-budget override (MCTS iterations for
        OmniBoost).  Schedulers without a budget knob ignore it.
    priority:
        Service scheduling hint: higher-priority requests are searched
        first when a batch is processed.  Results never depend on it.
    request_id:
        Caller-chosen correlation id, echoed on the response.
    slo:
        Optional :class:`SLOTarget` contract for this request.  Never
        changes the decision (or the cache key) — it sets what the
        service *accounts* the outcome against, and what an admission
        controller enforces when one is configured.
    """

    workload: Workload
    objective: Optional["SchedulingObjective"] = None
    budget: Optional[int] = None
    priority: int = 0
    request_id: str = ""
    slo: Optional[SLOTarget] = None

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget override must be >= 1, got {self.budget}")


@dataclass(frozen=True)
class ScheduleResponse:
    """One scheduling answer, with provenance and timing.

    Attributes
    ----------
    decision:
        The underlying :class:`ScheduleDecision`.
    scheduler_name:
        Which scheduler produced (or originally produced, for cache
        hits) the decision.
    cache_status:
        ``"uncached"`` for a direct scheduler call, ``"miss"`` /
        ``"hit"`` when a decision cache sat in front of the scheduler,
        ``"bypass"`` when the request's knobs made it uncacheable.
    measured_wall_time_s:
        Host-clock seconds from accepting the request to this response
        being ready — always recorded by the host, never a scheduler's
        self-report (that stays on ``decision.wall_time_s``).  This is
        request *latency*: when a service processes several requests
        concurrently, their latencies overlap and do not sum to the
        batch's wall time (the per-decision compute attribution lives
        in ``decision.cost``).
    request_id:
        Echo of :attr:`ScheduleRequest.request_id`.
    """

    decision: ScheduleDecision
    scheduler_name: str
    cache_status: str = "uncached"
    measured_wall_time_s: float = 0.0
    request_id: str = ""

    @property
    def mapping(self) -> Mapping:
        return self.decision.mapping

    @property
    def expected_score(self) -> float:
        return self.decision.expected_score


class Scheduler:
    """Base class: subclasses implement :meth:`_decide`."""

    #: Human-readable scheduler name used in reports and figures.
    name: str = "scheduler"

    def schedule(self, workload: Workload) -> ScheduleDecision:
        """Produce a mapping for ``workload`` (timed)."""
        return self.respond(ScheduleRequest(workload=workload)).decision

    def respond(self, request: ScheduleRequest) -> ScheduleResponse:
        """Answer one :class:`ScheduleRequest` (timed by the host)."""
        started = time.perf_counter()  # repro: lint-ignore[RPR002] -- host measurement of search wall time
        decision = self._decide_request(request)
        elapsed = time.perf_counter() - started  # repro: lint-ignore[RPR002] -- host measurement of search wall time
        if decision.wall_time_s == 0.0:
            # Back-compat: schedulers that don't self-report get the
            # host measurement on the decision too.
            decision = replace(decision, wall_time_s=elapsed)
        return ScheduleResponse(
            decision=decision,
            scheduler_name=self.name,
            measured_wall_time_s=elapsed,
            request_id=request.request_id,
        )

    def _decide_request(self, request: ScheduleRequest) -> ScheduleDecision:
        """Hook for schedulers that honor per-request knobs.

        The default ignores everything but the workload; schedulers
        with a budget or objective knob (OmniBoost) override this.
        """
        return self._decide(request.workload)

    def _decide(self, workload: Workload) -> ScheduleDecision:  # pragma: no cover
        raise NotImplementedError
