"""Pluggable scheduling objectives (the paper's extensibility axis).

OmniBoost's MCTS maximizes whatever scalar the evaluation step returns;
the paper uses predicted system throughput.  This module makes that
choice explicit and pluggable: an objective turns the estimator's
per-device throughput prediction (plus design-time knowledge about the
mapping) into the scalar reward the search climbs.

Two objectives ship:

* :class:`ThroughputObjective` — the paper's reward: mean predicted
  per-component inferences/second.
* :class:`EnergyAwareObjective` — the energy extension: predicted
  inferences per joule (battery life) or a weighted
  throughput-vs-power trade-off.  Power is estimated entirely from
  design-time data — the profiled latency table and the
  :class:`~repro.hw.power.PowerModel` — so scheduling still costs one
  estimator query per candidate and never touches the board.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hw.platform_ import Platform
from ..hw.power import PowerModel
from ..sim.mapping import Mapping
from ..sim.profiler import LatencyTable
from ..workloads.mix import Workload

__all__ = [
    "SchedulingObjective",
    "ThroughputObjective",
    "EnergyAwareObjective",
]

_ENERGY_MODES = ("inferences-per-joule", "weighted")


class SchedulingObjective:
    """Scalar MCTS reward from a throughput prediction.

    Subclasses implement :meth:`score`; higher is better.  The
    ``predicted`` argument is the estimator's physical per-device
    throughput vector (inferences/second, platform device order).
    """

    #: Human-readable objective name used in reports.
    name: str = "objective"

    def score(
        self,
        workload: Workload,
        mapping: Mapping,
        predicted: np.ndarray,
    ) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class ThroughputObjective(SchedulingObjective):
    """The paper's reward: mean predicted per-component throughput.

    Equivalent to
    :meth:`~repro.estimator.model.ThroughputEstimator.reward`; it
    exists so that "the paper's objective" has a name in ablation
    tables.
    """

    name = "throughput"

    def score(
        self,
        workload: Workload,
        mapping: Mapping,
        predicted: np.ndarray,
    ) -> float:
        """Mean predicted per-component inferences/second."""
        return float(np.asarray(predicted, dtype=float).mean())


class EnergyAwareObjective(SchedulingObjective):
    """Energy-aware reward built on the board power model.

    Predicted board power combines the static idle floor with dynamic
    draw estimated as ``total_rate * e_dyn``, where ``e_dyn`` is the
    mapping's mix-average dynamic joules per inference from the
    profiled latency table (a design-time quantity; see
    :meth:`~repro.hw.power.PowerModel.dynamic_energy_per_inference`).

    Parameters
    ----------
    power_model:
        Board power model.
    platform:
        The platform the latency table was profiled on.
    latency_table:
        Design-time per-layer latencies (the same data the embedding
        tensor is built from).
    mode:
        ``"inferences-per-joule"`` (default) maximizes predicted
        efficiency — the battery-life objective.  ``"weighted"``
        maximizes ``mean_throughput - tradeoff_w * power_w``, trading
        inferences/second against watts at an explicit exchange rate.
    tradeoff_w:
        Exchange rate for ``"weighted"`` mode, in (inferences/second)
        per watt.  Ignored otherwise.
    """

    name = "energy-aware"

    def __init__(
        self,
        power_model: PowerModel,
        platform: Platform,
        latency_table: LatencyTable,
        mode: str = "inferences-per-joule",
        tradeoff_w: Optional[float] = None,
    ) -> None:
        if mode not in _ENERGY_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {_ENERGY_MODES}"
            )
        if mode == "weighted":
            if tradeoff_w is None or tradeoff_w < 0:
                raise ValueError(
                    "weighted mode needs a non-negative tradeoff_w, "
                    f"got {tradeoff_w}"
                )
        self.power_model = power_model
        self.platform = platform
        self.latency_table = latency_table
        self.mode = mode
        self.tradeoff_w = tradeoff_w

    def predicted_power_w(
        self,
        workload: Workload,
        mapping: Mapping,
        predicted: np.ndarray,
    ) -> float:
        """Design-time board power estimate for a candidate mapping."""
        total_rate = float(np.asarray(predicted, dtype=float).sum())
        dynamic_energy = self.power_model.dynamic_energy_per_inference(
            self.platform, workload.models, mapping, self.latency_table
        )
        return (
            self.power_model.idle_floor_w(self.platform)
            + max(total_rate, 0.0) * dynamic_energy
        )

    def score(
        self,
        workload: Workload,
        mapping: Mapping,
        predicted: np.ndarray,
    ) -> float:
        """Predicted inferences/joule, or the weighted trade-off."""
        predicted = np.asarray(predicted, dtype=float)
        power = self.predicted_power_w(workload, mapping, predicted)
        if self.mode == "inferences-per-joule":
            total_rate = max(float(predicted.sum()), 0.0)
            return total_rate / power
        return float(predicted.mean()) - self.tradeoff_w * power
