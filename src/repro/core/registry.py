"""Name-based scheduler registry.

Schedulers register a *factory* under a short name; the
:class:`~repro.builder.SystemBuilder` materializes every registered
(or explicitly selected) scheduler when a system is assembled, so a
scheduler registered here shows up in ``repro schedule`` comparisons
and :attr:`~repro.pipeline.OmniBoostSystem.schedulers` automatically —
no pipeline edits required.

A factory is a one-argument callable ``factory(builder) -> Scheduler``
receiving the :class:`~repro.builder.SystemBuilder` whose lazy
artifacts (``builder.platform``, ``builder.estimator``,
``builder.latency_table``, ...) it may pull; touching an artifact
triggers exactly the design-time work that scheduler needs and nothing
more (the GPU-only baseline never trains an estimator).

The four paper schedulers are pre-registered in the paper's comparison
order — ``baseline``, ``mosaic``, ``ga``, ``omniboost`` — and lookups
are case-insensitive (``"OmniBoost"`` resolves like ``"omniboost"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..builder import SystemBuilder

__all__ = [
    "SchedulerFactory",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]

#: A scheduler constructor over the lazy system builder.
SchedulerFactory = Callable[["SystemBuilder"], Scheduler]

#: Insertion-ordered registry: canonical name -> factory.
_REGISTRY: Dict[str, SchedulerFactory] = {}


def _canonical(name: str) -> str:
    canonical = name.strip().lower()
    if not canonical:
        raise ValueError("scheduler name must be non-empty")
    return canonical


def register_scheduler(
    name: str,
    factory: Optional[SchedulerFactory] = None,
    replace: bool = False,
) -> Callable[[SchedulerFactory], SchedulerFactory]:
    """Register ``factory`` under ``name`` (usable as a decorator).

    >>> @register_scheduler("round-robin")
    ... def _build(builder):
    ...     return RoundRobinScheduler(builder.platform)  # doctest: +SKIP

    Re-registering an existing name raises unless ``replace=True``;
    registration order defines the comparison order appended after the
    built-ins.
    """
    canonical = _canonical(name)

    def _register(fn: SchedulerFactory) -> SchedulerFactory:
        if canonical in _REGISTRY and not replace:
            raise ValueError(
                f"scheduler {canonical!r} is already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[canonical] = fn
        return fn

    if factory is None:
        return _register
    _register(factory)
    return factory


def get_scheduler(name: str) -> SchedulerFactory:
    """Look up a registered factory by (case-insensitive) name."""
    canonical = _canonical(name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"no scheduler registered under {name!r}; known: {known}"
        ) from None


def unregister_scheduler(name: str) -> None:
    """Remove a registration (built-ins included — they can be re-added)."""
    canonical = _canonical(name)
    if canonical not in _REGISTRY:
        raise KeyError(f"no scheduler registered under {name!r}")
    del _REGISTRY[canonical]


def available_schedulers() -> Tuple[str, ...]:
    """Registered names in comparison order (built-ins first)."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# Built-ins: the paper's comparison set, in Fig.-5 order.  Imports stay
# inside the factories so merely importing the registry never pulls the
# whole baseline stack in.
# ----------------------------------------------------------------------
def _baseline_factory(builder: "SystemBuilder") -> Scheduler:
    from ..baselines.gpu_only import GpuOnlyScheduler

    return GpuOnlyScheduler(builder.platform)


def _mosaic_factory(builder: "SystemBuilder") -> Scheduler:
    from ..baselines.mosaic import MosaicScheduler

    return MosaicScheduler(builder.platform, builder.mosaic_regression)


def _ga_factory(builder: "SystemBuilder") -> Scheduler:
    from ..baselines.ga import GeneticScheduler

    return GeneticScheduler(builder.ga_cost_model, config=builder.ga_config)


def _omniboost_factory(builder: "SystemBuilder") -> Scheduler:
    from .scheduler import OmniBoostScheduler

    return OmniBoostScheduler(builder.estimator, config=builder.mcts_config)


register_scheduler("baseline", _baseline_factory)
register_scheduler("mosaic", _mosaic_factory)
register_scheduler("ga", _ga_factory)
register_scheduler("omniboost", _omniboost_factory)
