"""The OmniBoost scheduler: MCTS exploration + CNN estimator ranking.

This is the paper's primary contribution assembled: given a trained
:class:`~repro.estimator.model.ThroughputEstimator`, each scheduling
query builds a :class:`~repro.core.environment.SchedulingEnv` over the
workload, runs budgeted MCTS with the estimator as the evaluation
function, and returns the elite mapping.  No per-workload retraining
happens anywhere -- the paper's headline property.
"""

from __future__ import annotations

from typing import Optional

from ..estimator.model import ThroughputEstimator
from ..sim.mapping import Mapping
from ..workloads.mix import Workload
from .base import ScheduleDecision, Scheduler
from .environment import SchedulingEnv
from .mcts import MCTSConfig, MCTSResult, MonteCarloTreeSearch
from .objectives import SchedulingObjective

__all__ = ["OmniBoostScheduler"]


class OmniBoostScheduler(Scheduler):
    """Multi-DNN scheduler driven by MCTS over estimator rewards.

    Parameters
    ----------
    estimator:
        Trained throughput estimator (the ranking mechanism).
    config:
        MCTS budget/depth/exploration plus the batched-evaluation and
        transposition-cache knobs (``eval_batch_size``,
        ``use_eval_cache``); defaults to the paper's settings (budget
        500, depth 100, sequential evaluation).
    stage_cap:
        Pipeline-stage cap per DNN; ``None`` uses the platform device
        count, the paper's choice.
    mask_illegal:
        Enforce the cap by action masking (True, default) or by losing
        states (False, the paper's formulation; ablation only).
    objective:
        Optional :class:`~repro.core.objectives.SchedulingObjective`
        turning the estimator's per-device prediction into the MCTS
        reward.  ``None`` (default) uses the paper's reward — mean
        predicted system throughput.  Either way each candidate costs
        exactly one estimator query.
    """

    name = "OmniBoost"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        config: Optional[MCTSConfig] = None,
        stage_cap: Optional[int] = None,
        mask_illegal: bool = True,
        objective: Optional[SchedulingObjective] = None,
    ) -> None:
        self.estimator = estimator
        self.config = config or MCTSConfig()
        self.stage_cap = stage_cap
        self.mask_illegal = mask_illegal
        self.objective = objective
        self.last_result: Optional[MCTSResult] = None

    def _decide(self, workload: Workload) -> ScheduleDecision:
        num_devices = self.estimator.embedding.num_devices
        env = SchedulingEnv(
            workload,
            num_devices=num_devices,
            stage_cap=self.stage_cap,
            mask_illegal=self.mask_illegal,
        )

        if self.objective is None:

            def reward_fn(mapping: Mapping) -> float:
                return self.estimator.reward(workload, mapping)

            def reward_batch_fn(mappings):
                return self.estimator.reward_batch(
                    [(workload, mapping) for mapping in mappings]
                )

        else:

            def reward_fn(mapping: Mapping) -> float:
                predicted = self.estimator.predict_throughput(workload, mapping)
                return self.objective.score(workload, mapping, predicted)

            def reward_batch_fn(mappings):
                predicted = self.estimator.predict_throughput_batch(
                    [(workload, mapping) for mapping in mappings]
                )
                return [
                    self.objective.score(workload, mapping, row)
                    for mapping, row in zip(mappings, predicted)
                ]

        queries_before = self.estimator.query_count
        search = MonteCarloTreeSearch(
            env, reward_fn, self.config, reward_batch_fn=reward_batch_fn
        )
        result = search.search()
        self.last_result = result
        return ScheduleDecision(
            mapping=result.mapping,
            expected_score=result.reward,
            wall_time_s=0.0,  # filled by Scheduler.schedule
            cost={
                # The paper's budget accounting: one query per scored
                # rollout, a constant budget-minus-losing per decision.
                # The transposition cache serves repeated leaves
                # without touching the network, so the *actual* count
                # (what this process paid) is reported separately --
                # Section V-B pricing stays comparable with the paper
                # whether or not the cache is enabled.
                "estimator_queries": float(result.evaluations),
                "estimator_queries_actual": float(
                    self.estimator.query_count - queries_before
                ),
                "mcts_iterations": float(result.iterations),
                "losing_rollouts": float(result.losing_rollouts),
                "cache_hits": float(result.cache_hits),
                "cache_misses": float(result.cache_misses),
                "eval_batches": float(result.eval_batches),
            },
        )
