"""The OmniBoost scheduler: MCTS exploration + CNN estimator ranking.

This is the paper's primary contribution assembled: given a trained
:class:`~repro.estimator.model.ThroughputEstimator`, each scheduling
query builds a :class:`~repro.core.environment.SchedulingEnv` over the
workload, runs budgeted MCTS with the estimator as the evaluation
function, and returns the elite mapping.  No per-workload retraining
happens anywhere -- the paper's headline property.

The search machinery is factored so a long-lived front end can drive
it stepwise: :meth:`OmniBoostScheduler.make_search` wires environment
and reward functions into a :class:`MonteCarloTreeSearch` without
running it, and :meth:`OmniBoostScheduler.decision_from_result` turns
a finished :class:`MCTSResult` into the :class:`ScheduleDecision` with
the paper's cost accounting.  ``_decide`` composes the two; the
:class:`~repro.service.SchedulingService` instead drives several
searches' ``search_steps()`` coroutines concurrently and pools their
leaf evaluations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..estimator.model import ThroughputEstimator
from ..sim.mapping import Mapping
from ..workloads.mix import Workload
from .base import ScheduleDecision, ScheduleRequest, Scheduler
from .environment import SchedulingEnv
from .mcts import MCTSConfig, MCTSResult, MonteCarloTreeSearch
from .objectives import SchedulingObjective

__all__ = ["OmniBoostScheduler"]


class OmniBoostScheduler(Scheduler):
    """Multi-DNN scheduler driven by MCTS over estimator rewards.

    Parameters
    ----------
    estimator:
        Trained throughput estimator (the ranking mechanism).
    config:
        MCTS budget/depth/exploration plus the batched-evaluation and
        transposition-cache knobs (``eval_batch_size``,
        ``use_eval_cache``); defaults to the paper's settings (budget
        500, depth 100, sequential evaluation).
    stage_cap:
        Pipeline-stage cap per DNN; ``None`` uses the platform device
        count, the paper's choice.
    mask_illegal:
        Enforce the cap by action masking (True, default) or by losing
        states (False, the paper's formulation; ablation only).
    objective:
        Optional :class:`~repro.core.objectives.SchedulingObjective`
        turning the estimator's per-device prediction into the MCTS
        reward.  ``None`` (default) uses the paper's reward — mean
        predicted system throughput.  Either way each candidate costs
        exactly one estimator query.

    Per-request knobs: a :class:`~repro.core.base.ScheduleRequest`'s
    ``budget`` overrides ``config.budget`` and its ``objective``
    overrides the constructor objective, for that request only.
    """

    name = "OmniBoost"

    def __init__(
        self,
        estimator: ThroughputEstimator,
        config: Optional[MCTSConfig] = None,
        stage_cap: Optional[int] = None,
        mask_illegal: bool = True,
        objective: Optional[SchedulingObjective] = None,
    ) -> None:
        self.estimator = estimator
        self.config = config or MCTSConfig()
        self.stage_cap = stage_cap
        self.mask_illegal = mask_illegal
        self.objective = objective
        self.last_result: Optional[MCTSResult] = None

    # ------------------------------------------------------------------
    # Search assembly
    # ------------------------------------------------------------------
    def make_search(
        self,
        workload: Workload,
        config: Optional[MCTSConfig] = None,
        objective: Optional[SchedulingObjective] = None,
    ) -> MonteCarloTreeSearch:
        """Wire a ready-to-run search for one workload.

        ``config`` / ``objective`` default to the scheduler's own; the
        returned search has the estimator's scalar *and* batched reward
        functions attached, so ``search()`` runs it standalone and
        ``search_steps()`` lets a service drive it with pooled
        evaluation.
        """
        config = config or self.config
        objective = objective if objective is not None else self.objective
        num_devices = self.estimator.embedding.num_devices
        env = SchedulingEnv(
            workload,
            num_devices=num_devices,
            stage_cap=self.stage_cap,
            mask_illegal=self.mask_illegal,
        )

        def reward_fn(mapping: Mapping) -> float:
            return self.reward_from_predictions(
                workload,
                [mapping],
                self.estimator.predict_throughput_batch([(workload, mapping)]),
                objective,
            )[0]

        def reward_batch_fn(mappings):
            predicted = self.estimator.predict_throughput_batch(
                [(workload, mapping) for mapping in mappings]
            )
            return self.reward_from_predictions(
                workload, mappings, predicted, objective
            )

        return MonteCarloTreeSearch(
            env, reward_fn, config, reward_batch_fn=reward_batch_fn
        )

    @staticmethod
    def reward_from_predictions(
        workload: Workload,
        mappings,
        predicted,
        objective: Optional[SchedulingObjective] = None,
    ) -> list:
        """THE reward definition over raw per-device predictions.

        One place turns estimator outputs into MCTS rewards — the
        paper's mean predicted system throughput by default, or an
        objective's score.  Both the standalone search path
        (:meth:`make_search`) and the service's pooled evaluation call
        this, so the two can never diverge.
        """
        if objective is None:
            return [float(row.mean()) for row in predicted]
        return [
            float(objective.score(workload, mapping, row))
            for mapping, row in zip(mappings, predicted)
        ]

    def decision_from_result(
        self, result: MCTSResult, actual_queries: int
    ) -> ScheduleDecision:
        """Package a finished search with the paper's cost accounting.

        ``actual_queries`` is what this process really paid (estimator
        queries after cache savings); the budget view stays one query
        per scored rollout either way.  Also records the result on
        :attr:`last_result`.
        """
        self.last_result = result
        return ScheduleDecision(
            mapping=result.mapping,
            expected_score=result.reward,
            wall_time_s=0.0,  # filled by Scheduler.respond
            cost={
                # The paper's budget accounting: one query per scored
                # rollout, a constant budget-minus-losing per decision.
                # The transposition cache serves repeated leaves
                # without touching the network, so the *actual* count
                # (what this process paid) is reported separately --
                # Section V-B pricing stays comparable with the paper
                # whether or not the cache is enabled.
                "estimator_queries": float(result.evaluations),
                "estimator_queries_actual": float(actual_queries),
                "mcts_iterations": float(result.iterations),
                "losing_rollouts": float(result.losing_rollouts),
                "cache_hits": float(result.cache_hits),
                "cache_misses": float(result.cache_misses),
                "eval_batches": float(result.eval_batches),
            },
        )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def request_config(self, request: ScheduleRequest) -> MCTSConfig:
        """The effective MCTS config for one request (budget override)."""
        if request.budget is None:
            return self.config
        return replace(self.config, budget=request.budget)

    def _decide_request(self, request: ScheduleRequest) -> ScheduleDecision:
        queries_before = self.estimator.query_count
        search = self.make_search(
            request.workload,
            config=self.request_config(request),
            objective=request.objective,
        )
        result = search.search()
        return self.decision_from_result(
            result, self.estimator.query_count - queries_before
        )

    def _decide(self, workload: Workload) -> ScheduleDecision:
        return self._decide_request(ScheduleRequest(workload=workload))
