"""Monte Carlo Tree Search over the scheduling environment (paper IV-C).

The classic four phases under a fixed computational budget:

1. **Selection** -- descend from the root by UCT while nodes are fully
   expanded;
2. **Expansion** -- attach one untried child of the selected node;
3. **Evaluation** -- random rollout from the new child to a leaf; a
   winning leaf's trajectory is scored by the throughput estimator
   (one query), a losing leaf receives the static loss reward;
4. **Back-propagation** -- the reward updates visit counts and value
   sums along the path.

The budget is the number of iterations (== scored rollouts for
winning trajectories); the paper uses 500 with search depth 100.  The
depth parameter caps how deep the *tree* may grow (nodes past it are
evaluated by rollout only); rollouts themselves always play to a
terminal state, otherwise mixes with more total layers than the depth
cap could never be scheduled.  The
search keeps the best complete trajectory seen anywhere and returns
its mapping -- the paper's "candidate state with the highest expected
reward".

Two run-time optimizations sit on top of the classic loop, both
*result*-neutral for deterministic evaluators:

* a **transposition cache** (on by default) keyed by the canonical
  mapping (mappings are value objects) short-circuits repeated
  rollout leaves so the estimator is queried once per distinct
  mapping -- rewards, tree statistics and the returned elite are
  identical to re-querying, but actual query counts drop (the
  ``MCTSResult`` counters record both views);
* **micro-batched evaluation** (``MCTSConfig.eval_batch_size``)
  defers winning rollouts and scores several leaves in one vectorized
  estimator call.  Deferred rollouts post a *virtual visit* along
  their path (the classic virtual-loss trick) so UCT selection keeps
  diversifying inside a micro-batch; rewards are backed up when the
  batch is flushed.  At the default ``eval_batch_size=1`` every
  rollout flushes immediately and the search is step-for-step
  identical to the paper's sequential loop, including the seeded RNG
  stream.

For *online* re-scheduling (a tenant arrives or departs and the mix
must be re-planned) the search additionally supports **warm starts**:
``search_steps(initial_mapping=...)`` scores a seed mapping — usually
the previous decision's mapping projected onto the surviving tenants —
before the budgeted loop and installs it as the incumbent.  The seed
is deliberately kept *out* of the tree, the RNG stream and the UCT
reward-normalization bounds, so at ``eval_batch_size=1`` the budgeted
loop is step-identical to a cold search; the returned elite is simply
``max(seed, cold trajectory)``, which guarantees a warm search never
returns a worse reward than its seed and returns the *identical*
result when seeded with the cold search's own elite.  Combined with
``patience`` (stop after that many consecutive iterations without an
incumbent improvement) a warm re-search converges in a fraction of the
cold budget — the mechanism :class:`repro.online.OnlineScheduler`
builds on.

The search itself is agnostic about *where* its rewards come from: it
maximizes whatever number the evaluation step hands back.  The
engine's distilled fast path (PR 10) exploits exactly that — under
:class:`repro.estimator.FastPathPolicy` most rollout leaves are scored
by the distilled student, calibrated onto the full estimator's reward
scale, and only the per-batch survivors pay a real forward.  Because
proxy rewards steer the *tree*, not the final answer, the engine
re-certifies afterwards: the served mapping is always chosen by full
estimator scores over the fully-scored candidates, never by a proxy
number alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.mapping import Mapping
from .environment import LOSS_REWARD, SchedulingEnv, SchedulingState

__all__ = ["MCTSConfig", "MCTSResult", "MCTSNode", "MonteCarloTreeSearch"]

#: An evaluation function: complete mapping -> scalar reward.
RewardFn = Callable[[Mapping], float]

#: A vectorized evaluation function: mappings -> rewards, one batched
#: estimator forward instead of ``len(mappings)`` scalar queries.
RewardBatchFn = Callable[[Sequence[Mapping]], Sequence[float]]


@dataclass(frozen=True)
class MCTSConfig:
    """Search hyper-parameters.

    ``budget`` and ``max_depth`` default to the paper's Section V
    settings (500 iterations, depth 100).  ``exploration`` is the UCT
    constant; ``seed`` drives all stochastic choices.  ``elite``
    selects how the final mapping is extracted: ``"max"`` returns the
    highest-reward trajectory seen anywhere, ``"mean-descent"`` walks
    the tree by expected reward first (a winner's-curse guard when the
    evaluator is noisy) and returns that subtree's best trajectory.

    ``eval_batch_size`` collects that many distinct winning rollouts
    before scoring them in one vectorized evaluator call; the default
    of 1 preserves the paper's strictly sequential semantics (and the
    exact seeded trajectory).  ``use_eval_cache`` enables the
    transposition cache over rollout leaves; with a deterministic
    evaluator the cache is result-identical and only saves queries, so
    it defaults to on.  Disable it for noisy evaluators where every
    rollout should draw a fresh sample.
    """

    budget: int = 500
    max_depth: int = 100
    exploration: float = 1.2
    rollout_stay_prob: float = 0.85
    elite: str = "max"
    seed: int = 0
    eval_batch_size: int = 1
    use_eval_cache: bool = True

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.exploration < 0:
            raise ValueError(f"exploration must be >= 0, got {self.exploration}")
        if not 0 <= self.rollout_stay_prob < 1:
            raise ValueError(
                f"rollout_stay_prob must be in [0, 1), got {self.rollout_stay_prob}"
            )
        if self.elite not in ("max", "mean-descent"):
            raise ValueError(
                f"elite must be 'max' or 'mean-descent', got {self.elite!r}"
            )
        if self.eval_batch_size < 1:
            raise ValueError(
                f"eval_batch_size must be >= 1, got {self.eval_batch_size}"
            )


class MCTSNode:
    """One tree node: a state plus UCT statistics.

    Besides the classic visit/value statistics each node remembers the
    best *complete* trajectory evaluated anywhere in its subtree, so
    elite extraction can descend by expected reward and still hand back
    a full mapping.
    """

    __slots__ = (
        "state",
        "parent",
        "action",
        "children",
        "untried",
        "visits",
        "value_sum",
        "best_reward",
        "best_mapping",
    )

    def __init__(
        self,
        state: SchedulingState,
        parent: Optional["MCTSNode"],
        action: Optional[int],
        untried: List[int],
    ) -> None:
        self.state = state
        self.parent = parent
        self.action = action
        self.children: Dict[int, MCTSNode] = {}
        self.untried = untried
        self.visits = 0
        self.value_sum = 0.0
        self.best_reward = -math.inf
        self.best_mapping: Optional[Mapping] = None

    @property
    def mean_value(self) -> float:
        """Average backed-up reward (0 before any visit)."""
        return self.value_sum / self.visits if self.visits else 0.0

    def is_fully_expanded(self) -> bool:
        return not self.untried

    def uct_child(
        self,
        exploration: float,
        reward_low: float,
        reward_high: float,
    ) -> "MCTSNode":
        """Child maximizing the UCT score.

        Mean values are min-max normalized by the reward range observed
        so far (``reward_low``/``reward_high``): the estimator returns
        physical inferences/second, whose scale varies per mix, and an
        un-normalized exploitation term would drown the exploration
        bonus.
        """
        log_visits = math.log(max(self.visits, 1))
        span = max(reward_high - reward_low, 1e-9)
        best_child = None
        best_score = -math.inf
        for child in self.children.values():
            if child.visits == 0:
                return child
            exploitation = (child.mean_value - reward_low) / span
            score = exploitation + exploration * math.sqrt(
                log_visits / child.visits
            )
            if score > best_score:
                best_score = score
                best_child = child
        if best_child is None:
            raise RuntimeError("uct_child called on a childless node")
        return best_child


@dataclass
class MCTSResult:
    """Outcome of one search.

    ``mapping`` is the elite trajectory's mapping; ``reward`` its
    estimator score.  ``iterations`` counts MCTS iterations,
    ``evaluations`` the scored winning rollouts (losing rollouts cost
    none), ``losing_rollouts`` how many rollouts died on the stage
    cap.  Scored rollouts split into ``cache_misses`` (actual
    evaluator queries) and ``cache_hits`` (rewards served by the
    transposition cache, costing no query):
    ``evaluations == cache_hits + cache_misses`` always, and with the
    cache disabled every evaluation is a miss.  ``eval_batches``
    counts vectorized evaluator calls (== ``cache_misses`` when
    ``eval_batch_size`` is 1).

    ``improvements`` records the search's *anytime* behaviour: one
    ``(iteration, reward, mapping)`` entry each time the incumbent
    (best complete trajectory so far) improved, with ``iteration``
    1-based.  Because the RNG stream consumed per iteration does not
    depend on the budget, a search with budget ``B`` and the same seed
    is exactly the first ``B`` iterations of a longer search -- so
    :meth:`incumbent_at` reproduces what any smaller budget would have
    returned, and incumbent reward is monotone in the budget.  (The
    prefix property is exact at ``eval_batch_size=1``; larger batches
    flush the final partial batch at the budget end, so the tail may
    differ between budgets.)

    Warm-started searches carry two extra fields: ``seed_reward`` is
    the evaluated reward of the ``initial_mapping`` (``None`` on cold
    searches; the seed evaluation also counts in ``evaluations`` and
    appears in ``improvements`` at iteration 0), and ``stopped_early``
    records whether a ``patience`` limit ended the loop before the
    budget — in which case ``iterations`` is the count actually run.
    """

    mapping: Mapping
    reward: float
    iterations: int
    evaluations: int
    losing_rollouts: int
    root_visits: int
    rewards_seen: List[float] = field(default_factory=list)
    improvements: List[Tuple[int, float, Mapping]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    eval_batches: int = 0
    seed_reward: Optional[float] = None
    stopped_early: bool = False

    def incumbent_at(self, iteration: int) -> Tuple[Optional[Mapping], float]:
        """Best (mapping, reward) after the first ``iteration`` iterations.

        Returns ``(None, -inf)`` if no winning rollout had completed by
        then.  Only meaningful for ``elite="max"`` searches, where the
        returned mapping *is* the incumbent.
        """
        if iteration < 1:
            raise ValueError(f"iteration must be >= 1, got {iteration}")
        best: Tuple[Optional[Mapping], float] = (None, -math.inf)
        for when, reward, mapping in self.improvements:
            if when > iteration:
                break
            best = (mapping, reward)
        return best


class MonteCarloTreeSearch:
    """UCT search over a :class:`SchedulingEnv`."""

    def __init__(
        self,
        env: SchedulingEnv,
        reward_fn: RewardFn,
        config: Optional[MCTSConfig] = None,
        reward_batch_fn: Optional[RewardBatchFn] = None,
    ) -> None:
        self.env = env
        self.reward_fn = reward_fn
        self.reward_batch_fn = reward_batch_fn
        self.config = config or MCTSConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._reward_low = math.inf
        self._reward_high = -math.inf

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(
        self,
        initial_mapping: Optional[Mapping] = None,
        patience: Optional[int] = None,
    ) -> MCTSResult:
        """Run the budgeted search and return the elite mapping."""
        steps = self.search_steps(
            initial_mapping=initial_mapping, patience=patience
        )
        try:
            request = next(steps)
            while True:
                request = steps.send(self._evaluate_batch(request))
        except StopIteration as stop:
            return stop.value

    def search_steps(
        self,
        initial_mapping: Optional[Mapping] = None,
        patience: Optional[int] = None,
    ) -> "Generator[List[Mapping], Sequence[float], MCTSResult]":
        """The search as a coroutine that externalizes leaf evaluation.

        Yields the open micro-batch (a list of distinct complete
        mappings awaiting rewards) every time the search would have
        called the evaluator, and expects the matching reward list via
        ``send()``.  The generator's return value is the
        :class:`MCTSResult`.  :meth:`search` drives this with the
        wired reward functions; a scheduling service can instead drive
        several searches at once and score their pending leaves in one
        pooled evaluator call — with a deterministic evaluator the
        trajectory is identical either way, because each step consumes
        exactly the rewards it would have computed itself.

        ``initial_mapping`` warm-starts the search: the seed mapping is
        scored first (one evaluation, yielded as its own micro-batch)
        and installed as the incumbent — and, when the transposition
        cache is on, as a cache entry, so rollouts that rediscover it
        cost no query.  The seed touches neither the tree, the RNG
        stream nor the reward-normalization bounds: at
        ``eval_batch_size=1`` the budgeted loop is step-identical to a
        cold search, so the result is ``max(seed, cold trajectory)`` —
        never worse than the seed, and identical to the cold search
        when seeded with that search's own elite.  The seed must map
        exactly this environment's workload (and respect its stage
        cap); a mismatch raises :class:`ValueError` before any
        evaluation, which callers use as the cold-search fallback
        trigger.

        ``patience`` stops the loop once that many consecutive
        iterations pass without an incumbent improvement (the seed
        counts as iteration 0).  With micro-batching, improvements
        settle at flush time, so reaching the patience threshold first
        flushes the open micro-batch and re-checks — deferred
        improvements still reset the counter, and a stop only fires on
        truly stale state.
        """
        env = self.env
        config = self.config
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if initial_mapping is not None:
            self._validate_seed(initial_mapping)
        root_state = env.reset()
        root = MCTSNode(root_state, None, None, env.legal_actions(root_state))
        best_mapping: Optional[Mapping] = None
        best_reward = -math.inf
        evaluations = 0
        losing = 0
        cache_hits = 0
        cache_misses = 0
        eval_batches = 0
        rewards_seen: List[float] = []
        improvements: List[Tuple[int, float, Mapping]] = []
        self._reward_low = math.inf
        self._reward_high = -math.inf

        #: Transposition table: canonical mapping -> evaluator reward.
        cache: Dict[Mapping, float] = {}
        #: Deferred winning rollouts awaiting one batched evaluation:
        #: (mapping, [(iteration, leaf node), ...]) in first-seen order.
        pending: List[Tuple[Mapping, List[Tuple[int, MCTSNode]]]] = []
        pending_index: Dict[Mapping, int] = {}
        #: Cache hits observed while a batch is open; settled together
        #: with the batch so improvements stay in iteration order.
        resolved: List[Tuple[int, MCTSNode, Mapping, float]] = []

        last_improved = 0
        seed_reward: Optional[float] = None

        def settle(
            iteration: int, node: MCTSNode, mapping: Mapping, reward: float
        ) -> None:
            """Account one scored rollout whose visits are already posted."""
            nonlocal evaluations, best_mapping, best_reward, last_improved
            evaluations += 1
            rewards_seen.append(reward)
            self._reward_low = min(self._reward_low, reward)
            self._reward_high = max(self._reward_high, reward)
            if reward > best_reward:
                best_reward = reward
                best_mapping = mapping
                improvements.append((iteration, reward, mapping))
                last_improved = max(last_improved, iteration)
            walk: Optional[MCTSNode] = node
            while walk is not None:
                walk.value_sum += reward
                if reward > walk.best_reward:
                    walk.best_reward = reward
                    walk.best_mapping = mapping
                walk = walk.parent

        def drain(rewards: Sequence[float]) -> None:
            """Settle the open micro-batch (scored externally) in iteration order."""
            entries = list(resolved)
            resolved.clear()
            if pending:
                for (mapping, waiters), reward in zip(pending, rewards):
                    reward = float(reward)
                    if config.use_eval_cache:
                        cache[mapping] = reward
                    for when, waiter in waiters:
                        entries.append((when, waiter, mapping, reward))
                pending.clear()
                pending_index.clear()
            entries.sort(key=lambda entry: entry[0])
            for when, waiter, mapping, reward in entries:
                settle(when, waiter, mapping, reward)

        if initial_mapping is not None:
            # Score the seed as iteration 0.  It becomes the incumbent
            # (and a cache entry) but deliberately does NOT touch the
            # tree, the RNG stream or the reward-normalization bounds:
            # the budgeted loop below stays step-identical to a cold
            # search at eval_batch_size=1.
            eval_batches += 1
            cache_misses += 1
            evaluations += 1
            seed_reward = float((yield [initial_mapping])[0])
            rewards_seen.append(seed_reward)
            best_mapping = initial_mapping
            best_reward = seed_reward
            improvements.append((0, seed_reward, initial_mapping))
            if config.use_eval_cache:
                cache[initial_mapping] = seed_reward

        iterations_run = 0
        stopped_early = False
        for iteration in range(1, config.budget + 1):
            if patience is not None and iteration - last_improved > patience:
                # Deferred rollouts may hold unsettled improvements:
                # flush the open micro-batch before deciding, so a
                # stop only ever fires on truly stale state.
                if pending:
                    eval_batches += 1
                    drain((yield [m for m, _ in pending]))
                if iteration - last_improved > patience:
                    stopped_early = True
                    break
            iterations_run = iteration
            node = self._select(root)
            node = self._expand(node)
            final_state = self._rollout(node.state)
            # A state can be complete AND losing at once (the very last
            # decision opens a cap-breaking stage); losing dominates.
            if env.is_complete(final_state) and not env.is_losing(final_state):
                mapping = env.mapping(final_state)
                self._post_virtual_visit(node)
                if config.use_eval_cache and mapping in cache:
                    cache_hits += 1
                    if pending:
                        resolved.append(
                            (iteration, node, mapping, cache[mapping])
                        )
                    else:
                        settle(iteration, node, mapping, cache[mapping])
                elif config.use_eval_cache and mapping in pending_index:
                    # Same leaf twice inside one micro-batch: attach the
                    # rollout to the queued query instead of re-asking.
                    cache_hits += 1
                    pending[pending_index[mapping]][1].append(
                        (iteration, node)
                    )
                else:
                    cache_misses += 1
                    if config.use_eval_cache:
                        pending_index[mapping] = len(pending)
                    pending.append((mapping, [(iteration, node)]))
                    if len(pending) >= config.eval_batch_size:
                        eval_batches += 1
                        drain((yield [m for m, _ in pending]))
            else:
                reward = LOSS_REWARD
                losing += 1
                self._reward_low = min(self._reward_low, reward)
                self._backpropagate(node, reward, None)
        if pending:
            eval_batches += 1
            drain((yield [m for m, _ in pending]))
        else:
            drain(())

        if self.config.elite == "mean-descent":
            elite_mapping, elite_reward = self._extract_elite(root)
            if elite_mapping is not None:
                best_mapping = elite_mapping
                best_reward = elite_reward

        if best_mapping is None:
            # Every rollout lost (possible only with masking disabled
            # and a tiny budget); fall back to the single-stage mapping
            # on device 0 so callers always get a valid schedule.
            best_mapping = Mapping(
                [[0] * model.num_layers for model in env.workload.models]
            )
            best_reward = LOSS_REWARD
        return MCTSResult(
            mapping=best_mapping,
            reward=best_reward,
            iterations=iterations_run,
            evaluations=evaluations,
            losing_rollouts=losing,
            root_visits=root.visits,
            rewards_seen=rewards_seen,
            improvements=improvements,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            eval_batches=eval_batches,
            seed_reward=seed_reward,
            stopped_early=stopped_early,
        )

    def _validate_seed(self, mapping: Mapping) -> None:
        """Reject a warm-start seed that does not fit this environment.

        Raised *before* any evaluation, so callers can use the error as
        their cold-search fallback trigger.
        """
        mapping.validate(self.env.workload.models, self.env.num_devices)
        if mapping.max_stages > self.env.stage_cap:
            raise ValueError(
                f"seed mapping uses {mapping.max_stages} stages, over the "
                f"environment's cap of {self.env.stage_cap}"
            )

    def _evaluate_batch(self, mappings: Sequence[Mapping]) -> List[float]:
        """Score a micro-batch, vectorized when a batch fn is wired."""
        if self.reward_batch_fn is not None:
            return [float(value) for value in self.reward_batch_fn(mappings)]
        return [float(self.reward_fn(mapping)) for mapping in mappings]

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _select(self, node: MCTSNode) -> MCTSNode:
        """Descend by UCT until a not-fully-expanded or terminal node."""
        env = self.env
        low = self._reward_low if self._reward_low < math.inf else 0.0
        high = self._reward_high if self._reward_high > -math.inf else 1.0
        while node.is_fully_expanded() and node.children:
            node = node.uct_child(self.config.exploration, low, high)
            if env.is_terminal(node.state):
                break
        return node

    def _expand(self, node: MCTSNode) -> MCTSNode:
        """Attach one untried child.

        No-op on terminal nodes and at the tree-depth cap.
        """
        if not node.untried or self.env.is_terminal(node.state):
            return node
        if self.env.decisions_made(node.state) >= self.config.max_depth:
            return node
        index = int(self.rng.integers(len(node.untried)))
        action = node.untried.pop(index)
        child_state = self.env.step(node.state, action)
        child = MCTSNode(
            child_state,
            node,
            action,
            self.env.legal_actions(child_state),
        )
        node.children[action] = child
        return child

    def _rollout(self, state: SchedulingState) -> SchedulingState:
        """Biased random playout to a terminal state.

        With probability ``rollout_stay_prob`` the playout keeps the
        current DNN on its present device (extending the stage); a
        uniform choice over legal actions otherwise.  Uniform per-layer
        choices would place almost every stage boundary within the
        first few layers (the chance of *never* switching across n
        layers is (1/3)^n), which is a terrible proposal distribution;
        the stay bias makes split points roughly uniform over depth,
        matching the set-ups the paper's motivational experiment
        samples.
        """
        env = self.env
        stay = self.config.rollout_stay_prob
        while not env.is_terminal(state):
            actions = env.legal_actions(state)
            if not actions:
                break
            dnn = env.current_dnn(state)
            row = state.assigned[dnn] if dnn is not None else ()
            if row and row[-1] in actions and self.rng.random() < stay:
                action = row[-1]
            else:
                action = actions[int(self.rng.integers(len(actions)))]
            state = env.step(state, action)
        return state

    @staticmethod
    def _post_virtual_visit(node: Optional[MCTSNode]) -> None:
        """Count a deferred rollout's visit along its path (virtual loss).

        Deferred rollouts post their visit immediately and their value
        at flush time (:func:`settle` adds ``value_sum`` only).  Inside
        an open micro-batch the extra visits depress the pending path's
        UCT score, steering subsequent selections elsewhere -- without
        them every iteration of a batch would descend to the same leaf.
        """
        while node is not None:
            node.visits += 1
            node = node.parent

    @staticmethod
    def _backpropagate(
        node: Optional[MCTSNode],
        reward: float,
        mapping: Optional[Mapping],
    ) -> None:
        while node is not None:
            node.visits += 1
            node.value_sum += reward
            if mapping is not None and reward > node.best_reward:
                node.best_reward = reward
                node.best_mapping = mapping
            node = node.parent

    @staticmethod
    def _extract_elite(root: MCTSNode) -> Tuple[Optional[Mapping], float]:
        """Elite trajectory: descend by expected reward, then take the
        subtree's best evaluated completion.

        The paper fetches "the candidate state with the highest
        expected reward" -- node means, which average many rollout
        evaluations and are therefore far less exposed to single-query
        estimator error than the raw global maximum (a winner's-curse
        guard).
        """
        node = root
        while node.children:
            # Only trust means backed by enough rollouts; below that the
            # subtree statistics are noise and the descent stops.
            trusted = [
                child
                for child in node.children.values()
                if child.visits >= 16 and child.best_mapping is not None
            ]
            if not trusted:
                break
            node = max(trusted, key=lambda child: child.mean_value)
        return node.best_mapping, node.best_reward
