"""Fluent builder for model graphs.

The zoo modules (:mod:`repro.models.zoo`) describe each architecture by
chaining builder calls; the builder tracks the activation shape,
decomposes every unit into roofline kernels and computes FLOP / byte /
weight footprints from the real layer hyper-parameters.

The constructs the eleven paper models need are provided -- plain and
depthwise convolutions, fully connected layers, folded pooling / LRN /
activations, residual blocks (basic and bottleneck), SqueezeNet fire
stages and Inception mixed blocks -- plus two constructs for the
extension zoo (paper contribution iii, robustness to new models):
DenseNet composite layers and EfficientNet MBConv blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..hw.kernels import KernelSpec
from .graph import ModelGraph
from .layer import DTYPE_BYTES, LayerSpec, TensorShape

__all__ = ["ModelBuilder"]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution/pool along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution collapses dimension: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def _conv_kernels(
    name: str,
    in_shape: TensorShape,
    out_channels: int,
    kernel: Tuple[int, int],
    stride: int,
    padding: Tuple[int, int],
    groups: int,
) -> Tuple[List[KernelSpec], TensorShape, int]:
    """Kernels, output shape and weight bytes of one convolution."""
    kh, kw = kernel
    pad_h, pad_w = padding
    if in_shape.channels % groups != 0 or out_channels % groups != 0:
        raise ValueError(
            f"{name}: groups={groups} must divide both in_channels="
            f"{in_shape.channels} and out_channels={out_channels}"
        )
    out_h = _conv_out(in_shape.height, kh, stride, pad_h)
    out_w = _conv_out(in_shape.width, kw, stride, pad_w)
    out_shape = TensorShape(out_channels, out_h, out_w)
    in_per_group = in_shape.channels // groups
    flops = 2.0 * out_shape.numel * in_per_group * kh * kw
    weight_count = out_channels * in_per_group * kh * kw + out_channels
    weight_bytes = weight_count * DTYPE_BYTES
    depthwise = groups == in_shape.channels and groups == out_channels and groups > 1
    kind = "depthwise_conv" if depthwise else "conv"
    conv = KernelSpec(
        kind=kind,
        flops=flops,
        bytes_read=in_shape.nbytes + weight_bytes,
        bytes_written=out_shape.nbytes,
        name=f"{name}.conv{kh}x{kw}",
    )
    return [conv], out_shape, weight_bytes


def _activation_kernel(name: str, shape: TensorShape, kind_label: str = "relu") -> KernelSpec:
    """Pointwise activation over ``shape`` (ReLU/ReLU6/etc. cost alike)."""
    return KernelSpec(
        kind="activation",
        flops=float(shape.numel),
        bytes_read=float(shape.nbytes),
        bytes_written=float(shape.nbytes),
        name=f"{name}.{kind_label}",
    )


def _pool_kernels(
    name: str,
    in_shape: TensorShape,
    kernel: int,
    stride: int,
    padding: int,
    global_pool: bool,
) -> Tuple[List[KernelSpec], TensorShape]:
    """Kernels and output shape of a (max/avg) pooling op."""
    if global_pool:
        kernel, stride, padding = in_shape.height, 1, 0
        out_shape = TensorShape(in_shape.channels, 1, 1)
    else:
        out_h = _conv_out(in_shape.height, kernel, stride, padding)
        out_w = _conv_out(in_shape.width, kernel, stride, padding)
        out_shape = TensorShape(in_shape.channels, out_h, out_w)
    pool = KernelSpec(
        kind="pool",
        flops=float(out_shape.numel * kernel * kernel),
        bytes_read=float(in_shape.nbytes),
        bytes_written=float(out_shape.nbytes),
        name=f"{name}.pool{kernel}x{kernel}",
    )
    return [pool], out_shape


class ModelBuilder:
    """Accumulates :class:`LayerSpec` units while tracking shapes.

    Example
    -------
    >>> b = ModelBuilder("toy", TensorShape(3, 32, 32))
    >>> b.conv("conv1", 16, kernel=3, padding=1).fc("fc", 10)
    >>> graph = b.build()
    >>> graph.num_layers
    2
    """

    def __init__(self, model_name: str, input_shape: TensorShape) -> None:
        self.model_name = model_name
        self.input_shape = input_shape
        self._shape = input_shape
        self._layers: List[LayerSpec] = []

    # ------------------------------------------------------------------
    # Plain units
    # ------------------------------------------------------------------
    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: Optional[int] = None,
        groups: int = 1,
        activation: Optional[str] = "relu",
        pool: Optional[Tuple[int, int]] = None,
        pool_padding: int = 0,
        lrn: bool = False,
    ) -> "ModelBuilder":
        """Append one convolution unit (+ folded activation/LRN/pool).

        ``pool`` is ``(kernel, stride)`` of a max-pool fused after the
        conv, following the fusion conventions of mobile runtimes.
        ``padding`` defaults to "same" padding for odd kernels.
        """
        if padding is None:
            padding = kernel // 2
        in_shape = self._shape
        kernels, shape, weight_bytes = _conv_kernels(
            name, in_shape, out_channels, (kernel, kernel), stride, (padding, padding), groups
        )
        if activation:
            kernels.append(_activation_kernel(name, shape, activation))
        if lrn:
            kernels.append(
                KernelSpec(
                    kind="norm",
                    flops=float(5 * shape.numel),
                    bytes_read=float(shape.nbytes),
                    bytes_written=float(shape.nbytes),
                    name=f"{name}.lrn",
                )
            )
        if pool is not None:
            pool_kernel, pool_stride = pool
            pool_kernels, shape = _pool_kernels(
                name, shape, pool_kernel, pool_stride, pool_padding, global_pool=False
            )
            kernels.extend(pool_kernels)
        role = "depthwise" if kernels[0].kind == "depthwise_conv" else "conv"
        self._append(name, kernels, in_shape, shape, weight_bytes, role)
        return self

    def depthwise_conv(
        self,
        name: str,
        kernel: int = 3,
        stride: int = 1,
        activation: Optional[str] = "relu",
    ) -> "ModelBuilder":
        """Depthwise convolution unit (groups == channels)."""
        channels = self._shape.channels
        return self.conv(
            name,
            channels,
            kernel=kernel,
            stride=stride,
            groups=channels,
            activation=activation,
        )

    def fc(
        self,
        name: str,
        out_features: int,
        activation: Optional[str] = None,
        softmax: bool = False,
    ) -> "ModelBuilder":
        """Fully connected unit; flattens the incoming activation."""
        in_shape = self._shape
        in_features = in_shape.numel
        out_shape = TensorShape(out_features)
        weight_bytes = (in_features * out_features + out_features) * DTYPE_BYTES
        kernels = [
            KernelSpec(
                kind="gemm",
                flops=2.0 * in_features * out_features,
                bytes_read=float(in_shape.nbytes + weight_bytes),
                bytes_written=float(out_shape.nbytes),
                name=f"{name}.gemm",
            )
        ]
        if activation:
            kernels.append(_activation_kernel(name, out_shape, activation))
        if softmax:
            kernels.append(
                KernelSpec(
                    kind="softmax",
                    flops=float(5 * out_features),
                    bytes_read=float(out_shape.nbytes),
                    bytes_written=float(out_shape.nbytes),
                    name=f"{name}.softmax",
                )
            )
        self._append(name, kernels, in_shape, out_shape, weight_bytes, "fc")
        return self

    def pool_into_last(
        self,
        kernel: int = 2,
        stride: int = 2,
        padding: int = 0,
        global_pool: bool = False,
    ) -> "ModelBuilder":
        """Fold a pooling op into the most recent unit.

        Standalone pools are not partition units (no runtime splits a
        pipeline on a pooling op), so they always attach backwards.
        """
        if not self._layers:
            raise ValueError("pool_into_last requires at least one existing unit")
        last = self._layers.pop()
        pool_kernels, shape = _pool_kernels(
            last.name, last.output_shape, kernel, stride, padding, global_pool
        )
        merged = LayerSpec(
            name=last.name,
            kernels=last.kernels + tuple(pool_kernels),
            input_shape=last.input_shape,
            output_shape=shape,
            weight_bytes=last.weight_bytes,
            role=last.role,
        )
        self._layers.append(merged)
        self._shape = shape
        return self

    # ------------------------------------------------------------------
    # Composite (branching) units
    # ------------------------------------------------------------------
    def residual_basic(
        self, name: str, out_channels: int, stride: int = 1
    ) -> "ModelBuilder":
        """ResNet basic block (two 3x3 convs + identity/projection add)."""
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        branch, shape, wb = _conv_kernels(
            f"{name}.conv1", in_shape, out_channels, (3, 3), stride, (1, 1), 1
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.conv1", shape))
        weight_bytes += wb
        branch, shape, wb = _conv_kernels(
            f"{name}.conv2", shape, out_channels, (3, 3), 1, (1, 1), 1
        )
        kernels.extend(branch)
        weight_bytes += wb
        if stride != 1 or in_shape.channels != out_channels:
            branch, _, wb = _conv_kernels(
                f"{name}.proj", in_shape, out_channels, (1, 1), stride, (0, 0), 1
            )
            kernels.extend(branch)
            weight_bytes += wb
        kernels.append(self._residual_add(name, shape))
        kernels.append(_activation_kernel(name, shape))
        self._append(name, kernels, in_shape, shape, weight_bytes, "block")
        return self

    def residual_bottleneck(
        self, name: str, mid_channels: int, out_channels: int, stride: int = 1
    ) -> "ModelBuilder":
        """ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand + add)."""
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        branch, shape, wb = _conv_kernels(
            f"{name}.reduce", in_shape, mid_channels, (1, 1), 1, (0, 0), 1
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.reduce", shape))
        weight_bytes += wb
        branch, shape, wb = _conv_kernels(
            f"{name}.conv3x3", shape, mid_channels, (3, 3), stride, (1, 1), 1
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.conv3x3", shape))
        weight_bytes += wb
        branch, shape, wb = _conv_kernels(
            f"{name}.expand", shape, out_channels, (1, 1), 1, (0, 0), 1
        )
        kernels.extend(branch)
        weight_bytes += wb
        if stride != 1 or in_shape.channels != out_channels:
            branch, _, wb = _conv_kernels(
                f"{name}.proj", in_shape, out_channels, (1, 1), stride, (0, 0), 1
            )
            kernels.extend(branch)
            weight_bytes += wb
        kernels.append(self._residual_add(name, shape))
        kernels.append(_activation_kernel(name, shape))
        self._append(name, kernels, in_shape, shape, weight_bytes, "block")
        return self

    def fire_squeeze(self, name: str, squeeze_channels: int) -> "ModelBuilder":
        """SqueezeNet fire-module squeeze stage (1x1 conv)."""
        return self.conv(name, squeeze_channels, kernel=1, padding=0)

    def fire_expand(
        self, name: str, expand1x1: int, expand3x3: int
    ) -> "ModelBuilder":
        """SqueezeNet fire-module expand stage (parallel 1x1 & 3x3 + concat)."""
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        branch, shape1, wb = _conv_kernels(
            f"{name}.e1x1", in_shape, expand1x1, (1, 1), 1, (0, 0), 1
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.e1x1", shape1))
        weight_bytes += wb
        branch, shape3, wb = _conv_kernels(
            f"{name}.e3x3", in_shape, expand3x3, (3, 3), 1, (1, 1), 1
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.e3x3", shape3))
        weight_bytes += wb
        out_shape = TensorShape(expand1x1 + expand3x3, shape1.height, shape1.width)
        kernels.append(self._concat_kernel(name, (shape1, shape3), out_shape))
        self._append(name, kernels, in_shape, out_shape, weight_bytes, "block")
        return self

    def mixed_block(
        self,
        name: str,
        branches: Sequence[Sequence[Tuple[int, int, int, int]]],
        pool_branch: Optional[int] = None,
        branch_strides: Optional[Sequence[int]] = None,
    ) -> "ModelBuilder":
        """Generic Inception "mixed" block.

        ``branches`` is a list of conv chains; each chain element is a
        ``(out_channels, kernel_h, kernel_w, stride)`` tuple applied in
        sequence (asymmetric 1x7/7x1 factorized convs are expressed
        directly).  ``pool_branch`` optionally appends a pool+1x1-conv
        branch producing that many channels (0 = pool only, passthrough
        channels).  ``branch_strides`` gives the *overall* stride of a
        branch when it differs from the product of its conv strides
        (used by reduction blocks whose pool branch strides by 2).

        All branch outputs are concatenated along channels; spatial
        sizes must agree, which the builder checks.
        """
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        branch_shapes: List[TensorShape] = []
        for branch_index, chain in enumerate(branches):
            shape = in_shape
            for step_index, (out_channels, kh, kw, stride) in enumerate(chain):
                # Stride-1 convs use "same" padding (spatial size kept,
                # including asymmetric 1x7/7x1 kernels); reduction convs
                # (stride > 1) are "valid", as in the Inception papers.
                if stride == 1:
                    pad = (kh // 2, kw // 2)
                else:
                    pad = (0, 0)
                step_name = f"{name}.b{branch_index}.{step_index}"
                step_kernels, shape, wb = _conv_kernels(
                    step_name, shape, out_channels, (kh, kw), stride, pad, 1
                )
                kernels.extend(step_kernels)
                kernels.append(_activation_kernel(step_name, shape))
                weight_bytes += wb
            branch_shapes.append(shape)
        if pool_branch is not None:
            stride = 1
            if branch_strides is not None:
                stride = branch_strides[len(branches)]
            pool_kernels, shape = _pool_kernels(
                f"{name}.pool",
                in_shape,
                3,
                stride,
                1 if stride == 1 else 0,
                global_pool=False,
            )
            kernels.extend(pool_kernels)
            if pool_branch > 0:
                step_kernels, shape, wb = _conv_kernels(
                    f"{name}.pool_proj", shape, pool_branch, (1, 1), 1, (0, 0), 1
                )
                kernels.extend(step_kernels)
                kernels.append(_activation_kernel(f"{name}.pool_proj", shape))
                weight_bytes += wb
            branch_shapes.append(shape)
        heights = {shape.height for shape in branch_shapes}
        widths = {shape.width for shape in branch_shapes}
        if len(heights) != 1 or len(widths) != 1:
            raise ValueError(
                f"{name}: branch spatial shapes disagree: "
                f"{[str(s) for s in branch_shapes]}"
            )
        out_shape = TensorShape(
            sum(shape.channels for shape in branch_shapes),
            branch_shapes[0].height,
            branch_shapes[0].width,
        )
        kernels.append(self._concat_kernel(name, branch_shapes, out_shape))
        self._append(name, kernels, in_shape, out_shape, weight_bytes, "block")
        return self

    def dense_layer(
        self, name: str, growth: int, bottleneck_mult: int = 4
    ) -> "ModelBuilder":
        """DenseNet composite layer (BN-ReLU-1x1, BN-ReLU-3x3, concat).

        The unit's output is the input concatenated with ``growth`` new
        channels, so the activation a downstream device would receive
        grows along the block -- the property that makes DenseNets
        expensive to split late in a block.
        """
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        mid_channels = bottleneck_mult * growth
        kernels.append(self._norm_kernel(f"{name}.bn1", in_shape))
        kernels.append(_activation_kernel(f"{name}.bn1", in_shape))
        branch, shape, wb = _conv_kernels(
            f"{name}.conv1x1", in_shape, mid_channels, (1, 1), 1, (0, 0), 1
        )
        kernels.extend(branch)
        weight_bytes += wb
        kernels.append(self._norm_kernel(f"{name}.bn2", shape))
        kernels.append(_activation_kernel(f"{name}.bn2", shape))
        branch, shape, wb = _conv_kernels(
            f"{name}.conv3x3", shape, growth, (3, 3), 1, (1, 1), 1
        )
        kernels.extend(branch)
        weight_bytes += wb
        out_shape = TensorShape(
            in_shape.channels + growth, shape.height, shape.width
        )
        kernels.append(self._concat_kernel(name, (in_shape, shape), out_shape))
        self._append(name, kernels, in_shape, out_shape, weight_bytes, "block")
        return self

    def mbconv(
        self,
        name: str,
        out_channels: int,
        expand_ratio: int,
        kernel: int = 3,
        stride: int = 1,
        se_ratio: float = 0.25,
    ) -> "ModelBuilder":
        """EfficientNet MBConv block (expand, depthwise, SE, project).

        The squeeze-and-excitation branch is priced as a global pool,
        two tiny GEMMs and an elementwise channel scale; the skip
        connection applies when ``stride == 1`` and channels match, as
        in the paper.
        """
        if expand_ratio < 1:
            raise ValueError(f"{name}: expand_ratio must be >= 1, got {expand_ratio}")
        in_shape = self._shape
        kernels: List[KernelSpec] = []
        weight_bytes = 0
        shape = in_shape
        mid_channels = in_shape.channels * expand_ratio
        if expand_ratio != 1:
            branch, shape, wb = _conv_kernels(
                f"{name}.expand", in_shape, mid_channels, (1, 1), 1, (0, 0), 1
            )
            kernels.extend(branch)
            kernels.append(_activation_kernel(f"{name}.expand", shape, "silu"))
            weight_bytes += wb
        branch, shape, wb = _conv_kernels(
            f"{name}.dw",
            shape,
            mid_channels,
            (kernel, kernel),
            stride,
            (kernel // 2, kernel // 2),
            mid_channels,
        )
        kernels.extend(branch)
        kernels.append(_activation_kernel(f"{name}.dw", shape, "silu"))
        weight_bytes += wb
        if se_ratio > 0:
            se_channels = max(1, int(in_shape.channels * se_ratio))
            pool_kernels, pooled = _pool_kernels(
                f"{name}.se", shape, 0, 1, 0, global_pool=True
            )
            kernels.extend(pool_kernels)
            for se_name, se_in, se_out in (
                (f"{name}.se.reduce", mid_channels, se_channels),
                (f"{name}.se.expand", se_channels, mid_channels),
            ):
                se_weight = (se_in * se_out + se_out) * DTYPE_BYTES
                kernels.append(
                    KernelSpec(
                        kind="gemm",
                        flops=2.0 * se_in * se_out,
                        bytes_read=float(se_in * DTYPE_BYTES + se_weight),
                        bytes_written=float(se_out * DTYPE_BYTES),
                        name=f"{se_name}.gemm",
                    )
                )
                weight_bytes += se_weight
            kernels.append(
                KernelSpec(
                    kind="elementwise",
                    flops=float(shape.numel),
                    bytes_read=float(shape.nbytes + mid_channels * DTYPE_BYTES),
                    bytes_written=float(shape.nbytes),
                    name=f"{name}.se.scale",
                )
            )
        branch, shape, wb = _conv_kernels(
            f"{name}.project", shape, out_channels, (1, 1), 1, (0, 0), 1
        )
        kernels.extend(branch)
        weight_bytes += wb
        if stride == 1 and in_shape.channels == out_channels:
            kernels.append(self._residual_add(name, shape))
        self._append(name, kernels, in_shape, shape, weight_bytes, "block")
        return self

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> ModelGraph:
        """Freeze the accumulated units into a :class:`ModelGraph`."""
        return ModelGraph(self.model_name, self.input_shape, tuple(self._layers))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _append(
        self,
        name: str,
        kernels: Sequence[KernelSpec],
        in_shape: TensorShape,
        out_shape: TensorShape,
        weight_bytes: int,
        role: str,
    ) -> None:
        if any(layer.name == name for layer in self._layers):
            raise ValueError(f"duplicate layer name {name!r} in model {self.model_name!r}")
        self._layers.append(
            LayerSpec(
                name=name,
                kernels=tuple(kernels),
                input_shape=in_shape,
                output_shape=out_shape,
                weight_bytes=weight_bytes,
                role=role,
            )
        )
        self._shape = out_shape

    @staticmethod
    def _norm_kernel(name: str, shape: TensorShape) -> KernelSpec:
        return KernelSpec(
            kind="norm",
            flops=float(2 * shape.numel),
            bytes_read=float(shape.nbytes),
            bytes_written=float(shape.nbytes),
            name=f"{name}.bn",
        )

    @staticmethod
    def _residual_add(name: str, shape: TensorShape) -> KernelSpec:
        return KernelSpec(
            kind="elementwise",
            flops=float(shape.numel),
            bytes_read=float(2 * shape.nbytes),
            bytes_written=float(shape.nbytes),
            name=f"{name}.add",
        )

    @staticmethod
    def _concat_kernel(
        name: str, inputs: Sequence[TensorShape], out_shape: TensorShape
    ) -> KernelSpec:
        return KernelSpec(
            kind="transform",
            flops=0.0,
            bytes_read=float(sum(shape.nbytes for shape in inputs)),
            bytes_written=float(out_shape.nbytes),
            name=f"{name}.concat",
        )
