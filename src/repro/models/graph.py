"""Model graphs: ordered sequences of partitionable layers.

The scheduler views every DNN as a linear chain of
:class:`~repro.models.layer.LayerSpec` units (branching blocks are
encapsulated inside single units; see that module's docstring).  A
:class:`ModelGraph` is that chain plus summary accessors used by the
profiler, the simulator and the reporting code.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from .layer import LayerSpec, TensorShape

__all__ = ["ModelGraph"]


class ModelGraph:
    """An immutable, named chain of partitionable layers.

    Parameters
    ----------
    name:
        Model name as registered in the zoo (``"vgg19"``).
    input_shape:
        Shape of the network input (e.g. ``3x224x224``).
    layers:
        The partition units in execution order.  Consecutive units must
        agree on shapes: ``layers[i].output_shape == layers[i+1].input_shape``.
    """

    def __init__(
        self, name: str, input_shape: TensorShape, layers: Tuple[LayerSpec, ...]
    ) -> None:
        if not layers:
            raise ValueError(f"model {name!r} has no layers")
        if layers[0].input_shape != input_shape:
            raise ValueError(
                f"model {name!r}: first layer expects {layers[0].input_shape}, "
                f"model input is {input_shape}"
            )
        for prev, nxt in zip(layers, layers[1:]):
            if prev.output_shape != nxt.input_shape:
                raise ValueError(
                    f"model {name!r}: shape mismatch between {prev.name!r} "
                    f"({prev.output_shape}) and {nxt.name!r} ({nxt.input_shape})"
                )
        self.name = name
        self.input_shape = input_shape
        self.layers: Tuple[LayerSpec, ...] = tuple(layers)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerSpec:
        return self.layers[index]

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of partition units."""
        return len(self.layers)

    @property
    def total_flops(self) -> float:
        """FLOPs of one inference."""
        return sum(layer.flops for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total parameter footprint in bytes."""
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the network output."""
        return self.layers[-1].output_shape

    def layer_index(self, layer_name: str) -> int:
        """Index of the layer with the given name."""
        for index, layer in enumerate(self.layers):
            if layer.name == layer_name:
                return index
        raise KeyError(f"model {self.name!r} has no layer named {layer_name!r}")

    def summary(self) -> str:
        """A human-readable per-layer table (name, shape, MFLOPs, params)."""
        lines = [
            f"{self.name}: {self.num_layers} partition units, "
            f"{self.total_flops / 1e9:.2f} GFLOPs, "
            f"{self.total_weight_bytes / 1e6:.1f} MB weights",
            f"{'#':>3} {'name':<18} {'out shape':<14} {'MFLOPs':>9} {'kB out':>8}",
        ]
        for index, layer in enumerate(self.layers):
            lines.append(
                f"{index:>3} {layer.name:<18} {str(layer.output_shape):<14} "
                f"{layer.flops / 1e6:>9.1f} {layer.output_bytes / 1e3:>8.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelGraph({self.name!r}, layers={self.num_layers})"
