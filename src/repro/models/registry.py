"""Model registry: the paper's eleven-network dataset by name.

The registry maps the canonical model names (the exact set Section V
trains the estimator on) to builder functions and caches built graphs,
since graphs are immutable and building Inception-v4 is not free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .graph import ModelGraph
from .zoo.alexnet import alexnet
from .zoo.extensions import densenet121, efficientnet_b0, resnet18
from .zoo.inception import inception_v3, inception_v4
from .zoo.mobilenet import mobilenet
from .zoo.resnet import resnet101, resnet34, resnet50
from .zoo.squeezenet import squeezenet
from .zoo.vgg import vgg13, vgg16, vgg19

__all__ = [
    "EXTENSION_MODEL_NAMES",
    "MODEL_NAMES",
    "available_models",
    "build_model",
    "build_all_models",
    "max_layer_count",
    "register_model",
]

_BUILDERS: Dict[str, Callable[[], ModelGraph]] = {
    "alexnet": alexnet,
    "mobilenet": mobilenet,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "resnet101": resnet101,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "squeezenet": squeezenet,
    "inception_v3": inception_v3,
    "inception_v4": inception_v4,
    "resnet18": resnet18,
    "densenet121": densenet121,
    "efficientnet_b0": efficientnet_b0,
}

#: Networks outside the paper's dataset (paper contribution iii:
#: robustness to new models); buildable by name but never part of the
#: design-time dataset unless explicitly requested.
EXTENSION_MODEL_NAMES = (
    "resnet18",
    "densenet121",
    "efficientnet_b0",
)

#: The paper's dataset, in the order Section V lists it.
MODEL_NAMES = (
    "alexnet",
    "mobilenet",
    "resnet34",
    "resnet50",
    "resnet101",
    "vgg13",
    "vgg16",
    "vgg19",
    "squeezenet",
    "inception_v3",
    "inception_v4",
)

_CACHE: Dict[str, ModelGraph] = {}


def available_models() -> List[str]:
    """Names of every registered model, registry order."""
    return list(_BUILDERS)


def build_model(name: str) -> ModelGraph:
    """Build (or fetch from cache) the named model graph."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(_BUILDERS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def build_all_models(names: Sequence[str] = MODEL_NAMES) -> List[ModelGraph]:
    """Build every named model (defaults to the paper's full dataset)."""
    return [build_model(name) for name in names]


def max_layer_count(names: Sequence[str] = MODEL_NAMES) -> int:
    """Largest unit count across the named models.

    This is the height the distributed embedding tensor zero-pads every
    performance vector to (paper Section IV-A).
    """
    return max(build_model(name).num_layers for name in names)


def register_model(name: str, builder: Callable[[], ModelGraph]) -> None:
    """Register a custom model.

    OmniBoost is explicitly designed to be extensible with new DNNs
    (paper contribution iii); adding a model here makes it available to
    the profiler, the embedding tensor and all schedulers.
    """
    if name in _BUILDERS:
        raise ValueError(f"model {name!r} is already registered")
    _BUILDERS[name] = builder
