"""MobileNet v1 (Howard et al.) -- 28 partition units.

One full-width stem convolution, thirteen depthwise-separable blocks
(each contributing a *depthwise* unit and a *pointwise* unit, the
granularity the paper uses when it counts MobileNet as 28 layers:
1 + 13x2 + classifier), a global average pool folded into the last
pointwise conv, and the classifier.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["mobilenet"]

#: (pointwise output channels, depthwise stride) per separable block.
_BLOCKS = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def mobilenet() -> ModelGraph:
    """Build the MobileNet v1 partition graph (input 3x224x224)."""
    b = ModelBuilder("mobilenet", TensorShape(3, 224, 224))
    b.conv("conv1", 32, kernel=3, stride=2, padding=1)
    for index, (channels, stride) in enumerate(_BLOCKS, start=1):
        b.depthwise_conv(f"dw{index}", kernel=3, stride=stride)
        b.conv(f"pw{index}", channels, kernel=1, padding=0)
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()
