"""Inception-v3 and Inception-v4 (Szegedy et al.) -- 17/23 partition units.

Each "mixed" block is one partition unit (branches and concat are
encapsulated).  Branch chains follow the published configurations;
two modelling approximations are documented inline:

* stride-1 convolutions inside mixed blocks use "same" padding, so the
  v4 stem keeps 73x73 where the paper's valid convs give 71x71 (the
  next reduction re-synchronizes the grid);
* Inception-C blocks fan a 1x1 (or 3x1/1x3 chain) out into two parallel
  tails; we express the two tails as separate chains that each repeat
  the shared prefix, double-counting a small prefix conv at 8x8 spatial
  size (<2% of block FLOPs).
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["inception_v3", "inception_v4"]


def inception_v3() -> ModelGraph:
    """Build the Inception-v3 partition graph (input 3x299x299)."""
    b = ModelBuilder("inception_v3", TensorShape(3, 299, 299))
    # Stem: five conv units (pools folded), 299 -> 35 spatial.
    b.conv("conv1a", 32, kernel=3, stride=2, padding=0)
    b.conv("conv2a", 32, kernel=3, padding=0)
    b.conv("conv2b", 64, kernel=3, padding=1, pool=(3, 2))
    b.conv("conv3b", 80, kernel=1, padding=0)
    b.conv("conv4a", 192, kernel=3, padding=0, pool=(3, 2))
    # 3x Inception-A at 35x35 (pool_proj 32/64/64).
    for index, pool_proj in enumerate((32, 64, 64), start=1):
        b.mixed_block(
            f"mixed5{'bcd'[index - 1]}",
            branches=[
                [(64, 1, 1, 1)],
                [(48, 1, 1, 1), (64, 5, 5, 1)],
                [(64, 1, 1, 1), (96, 3, 3, 1), (96, 3, 3, 1)],
            ],
            pool_branch=pool_proj,
        )
    # Reduction-A (mixed 6a): 35 -> 17.
    b.mixed_block(
        "mixed6a",
        branches=[
            [(384, 3, 3, 2)],
            [(64, 1, 1, 1), (96, 3, 3, 1), (96, 3, 3, 2)],
        ],
        pool_branch=0,
        branch_strides=[2, 2, 2],
    )
    # 4x Inception-B at 17x17 with factorized 7x7 (c7 = 128/160/160/192).
    for index, c7 in enumerate((128, 160, 160, 192), start=1):
        b.mixed_block(
            f"mixed6{'bcde'[index - 1]}",
            branches=[
                [(192, 1, 1, 1)],
                [(c7, 1, 1, 1), (c7, 1, 7, 1), (192, 7, 1, 1)],
                [
                    (c7, 1, 1, 1),
                    (c7, 7, 1, 1),
                    (c7, 1, 7, 1),
                    (c7, 7, 1, 1),
                    (192, 1, 7, 1),
                ],
            ],
            pool_branch=192,
        )
    # Reduction-B (mixed 7a): 17 -> 8.
    b.mixed_block(
        "mixed7a",
        branches=[
            [(192, 1, 1, 1), (320, 3, 3, 2)],
            [(192, 1, 1, 1), (192, 1, 7, 1), (192, 7, 1, 1), (192, 3, 3, 2)],
        ],
        pool_branch=0,
        branch_strides=[2, 2, 2],
    )
    # 2x Inception-C at 8x8 (parallel tails expressed as separate chains).
    for suffix in ("b", "c"):
        b.mixed_block(
            f"mixed7{suffix}",
            branches=[
                [(320, 1, 1, 1)],
                [(384, 1, 1, 1), (384, 1, 3, 1)],
                [(384, 1, 1, 1), (384, 3, 1, 1)],
                [(448, 1, 1, 1), (384, 3, 3, 1), (384, 1, 3, 1)],
                [(448, 1, 1, 1), (384, 3, 3, 1), (384, 3, 1, 1)],
            ],
            pool_branch=192,
        )
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()


def inception_v4() -> ModelGraph:
    """Build the Inception-v4 partition graph (input 3x299x299)."""
    b = ModelBuilder("inception_v4", TensorShape(3, 299, 299))
    # Stem convs: 299 -> 147.
    b.conv("stem_conv1", 32, kernel=3, stride=2, padding=0)
    b.conv("stem_conv2", 32, kernel=3, padding=0)
    b.conv("stem_conv3", 64, kernel=3, padding=1)
    # Stem mixed 1: parallel maxpool / stride-2 conv, 147 -> 73.
    b.mixed_block(
        "stem_mixed1",
        branches=[[(96, 3, 3, 2)]],
        pool_branch=0,
        branch_strides=[2, 2],
    )
    # Stem mixed 2: dual conv chains (73x73 kept via same padding).
    b.mixed_block(
        "stem_mixed2",
        branches=[
            [(64, 1, 1, 1), (96, 3, 3, 1)],
            [(64, 1, 1, 1), (64, 1, 7, 1), (64, 7, 1, 1), (96, 3, 3, 1)],
        ],
    )
    # Stem mixed 3: parallel stride-2 conv / maxpool, 73 -> 36.
    b.mixed_block(
        "stem_mixed3",
        branches=[[(192, 3, 3, 2)]],
        pool_branch=0,
        branch_strides=[2, 2],
    )
    # 4x Inception-A at 36x36.
    for index in range(1, 5):
        b.mixed_block(
            f"inceptionA{index}",
            branches=[
                [(96, 1, 1, 1)],
                [(64, 1, 1, 1), (96, 3, 3, 1)],
                [(64, 1, 1, 1), (96, 3, 3, 1), (96, 3, 3, 1)],
            ],
            pool_branch=96,
        )
    # Reduction-A: 36 -> 17.
    b.mixed_block(
        "reductionA",
        branches=[
            [(384, 3, 3, 2)],
            [(192, 1, 1, 1), (224, 3, 3, 1), (256, 3, 3, 2)],
        ],
        pool_branch=0,
        branch_strides=[2, 2, 2],
    )
    # 7x Inception-B at 17x17.
    for index in range(1, 8):
        b.mixed_block(
            f"inceptionB{index}",
            branches=[
                [(384, 1, 1, 1)],
                [(192, 1, 1, 1), (224, 1, 7, 1), (256, 7, 1, 1)],
                [
                    (192, 1, 1, 1),
                    (192, 7, 1, 1),
                    (224, 1, 7, 1),
                    (224, 7, 1, 1),
                    (256, 1, 7, 1),
                ],
            ],
            pool_branch=128,
        )
    # Reduction-B: 17 -> 8.
    b.mixed_block(
        "reductionB",
        branches=[
            [(192, 1, 1, 1), (192, 3, 3, 2)],
            [(256, 1, 1, 1), (256, 1, 7, 1), (320, 7, 1, 1), (320, 3, 3, 2)],
        ],
        pool_branch=0,
        branch_strides=[2, 2, 2],
    )
    # 3x Inception-C at 8x8 (parallel tails as separate chains).
    for index in range(1, 4):
        b.mixed_block(
            f"inceptionC{index}",
            branches=[
                [(256, 1, 1, 1)],
                [(384, 1, 1, 1), (256, 1, 3, 1)],
                [(384, 1, 1, 1), (256, 3, 1, 1)],
                [(384, 1, 1, 1), (448, 3, 1, 1), (512, 1, 3, 1), (256, 1, 3, 1)],
                [(384, 1, 1, 1), (448, 3, 1, 1), (512, 1, 3, 1), (256, 3, 1, 1)],
            ],
            pool_branch=256,
        )
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()
