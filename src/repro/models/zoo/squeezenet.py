"""SqueezeNet 1.0 (Iandola et al.) -- 18 partition units.

Stem conv, eight fire modules -- each split into a *squeeze* unit
(1x1 conv) and an *expand* unit (parallel 1x1/3x3 convs + concat,
encapsulated so a device boundary never separates the two expand
branches) -- and the conv10 classifier head with its global pool.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["squeezenet"]

#: (squeeze, expand1x1, expand3x3) channels per fire module.
_FIRES = (
    (16, 64, 64),
    (16, 64, 64),
    (32, 128, 128),
    (32, 128, 128),
    (48, 192, 192),
    (48, 192, 192),
    (64, 256, 256),
    (64, 256, 256),
)

#: Fire modules (1-based position among the eight) after which the
#: architecture places a 3x3/2 max-pool.
_POOL_AFTER = {3, 7}


def squeezenet() -> ModelGraph:
    """Build the SqueezeNet 1.0 partition graph (input 3x224x224)."""
    b = ModelBuilder("squeezenet", TensorShape(3, 224, 224))
    b.conv("conv1", 96, kernel=7, stride=2, padding=3, pool=(3, 2))
    for index, (squeeze, expand1, expand3) in enumerate(_FIRES, start=1):
        fire_id = index + 1  # fire modules are conventionally numbered 2..9
        b.fire_squeeze(f"fire{fire_id}_squeeze", squeeze)
        b.fire_expand(f"fire{fire_id}_expand", expand1, expand3)
        if index in _POOL_AFTER:
            b.pool_into_last(kernel=3, stride=2)
    b.conv("conv10", 1000, kernel=1, padding=0)
    b.pool_into_last(global_pool=True)
    return b.build()
