"""ResNet-34/50/101 (He et al.) -- 18/18/35 partition units.

Residual blocks are single partition units (a device boundary must not
cut a skip connection), so ResNet-34 contributes 16 basic-block units,
ResNet-50 and -101 contribute 16 and 33 bottleneck units, plus the
7x7 stem (with folded max-pool) and the classifier.
"""

from __future__ import annotations

from typing import Sequence

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["resnet34", "resnet50", "resnet101"]

#: Blocks per stage for each variant.
_STAGES = {
    "resnet34": (3, 4, 6, 3),
    "resnet50": (3, 4, 6, 3),
    "resnet101": (3, 4, 23, 3),
}
#: Basic-block output channels per stage (ResNet-34).
_BASIC_CHANNELS = (64, 128, 256, 512)
#: Bottleneck (mid, out) channels per stage (ResNet-50/101).
_BOTTLENECK_CHANNELS = ((64, 256), (128, 512), (256, 1024), (512, 2048))


def _stem(b: ModelBuilder) -> None:
    b.conv("conv1", 64, kernel=7, stride=2, padding=3, pool=(3, 2), pool_padding=1)


def _build_basic(name: str, stages: Sequence[int]) -> ModelGraph:
    b = ModelBuilder(name, TensorShape(3, 224, 224))
    _stem(b)
    for stage_index, (num_blocks, channels) in enumerate(
        zip(stages, _BASIC_CHANNELS), start=1
    ):
        for block_index in range(1, num_blocks + 1):
            stride = 2 if stage_index > 1 and block_index == 1 else 1
            b.residual_basic(f"layer{stage_index}.{block_index}", channels, stride)
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()


def _build_bottleneck(name: str, stages: Sequence[int]) -> ModelGraph:
    b = ModelBuilder(name, TensorShape(3, 224, 224))
    _stem(b)
    for stage_index, (num_blocks, (mid, out)) in enumerate(
        zip(stages, _BOTTLENECK_CHANNELS), start=1
    ):
        for block_index in range(1, num_blocks + 1):
            stride = 2 if stage_index > 1 and block_index == 1 else 1
            b.residual_bottleneck(f"layer{stage_index}.{block_index}", mid, out, stride)
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()


def resnet34() -> ModelGraph:
    """ResNet-34: stem + 16 basic blocks + classifier (18 units)."""
    return _build_basic("resnet34", _STAGES["resnet34"])


def resnet50() -> ModelGraph:
    """ResNet-50: stem + 16 bottleneck blocks + classifier (18 units)."""
    return _build_bottleneck("resnet50", _STAGES["resnet50"])


def resnet101() -> ModelGraph:
    """ResNet-101: stem + 33 bottleneck blocks + classifier (35 units)."""
    return _build_bottleneck("resnet101", _STAGES["resnet101"])
