"""The eleven-DNN model zoo from the paper's Section V dataset.

:mod:`.extensions` holds three architectures *outside* the dataset
(ResNet-18, DenseNet-121, EfficientNet-B0), used to exercise the
paper's robustness-to-new-models claim.
"""

from .alexnet import alexnet
from .extensions import densenet121, efficientnet_b0, resnet18
from .inception import inception_v3, inception_v4
from .mobilenet import mobilenet
from .resnet import resnet101, resnet34, resnet50
from .squeezenet import squeezenet
from .vgg import vgg13, vgg16, vgg19

__all__ = [
    "alexnet",
    "densenet121",
    "efficientnet_b0",
    "inception_v3",
    "inception_v4",
    "mobilenet",
    "resnet101",
    "resnet18",
    "resnet34",
    "resnet50",
    "squeezenet",
    "vgg13",
    "vgg16",
    "vgg19",
]
