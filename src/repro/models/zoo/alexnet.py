"""AlexNet (Krizhevsky et al.) -- 8 partition units.

The original single-tower configuration: five convolutions (LRN after
conv1/conv2, max-pools folded into conv1/conv2/conv5) followed by three
fully connected layers.  Matches the paper's counting of AlexNet as an
8-layer network.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["alexnet"]


def alexnet() -> ModelGraph:
    """Build the AlexNet partition graph (input 3x224x224)."""
    b = ModelBuilder("alexnet", TensorShape(3, 224, 224))
    b.conv("conv1", 96, kernel=11, stride=4, padding=2, lrn=True, pool=(3, 2))
    b.conv("conv2", 256, kernel=5, padding=2, lrn=True, pool=(3, 2))
    b.conv("conv3", 384, kernel=3)
    b.conv("conv4", 384, kernel=3)
    b.conv("conv5", 256, kernel=3, pool=(3, 2))
    b.fc("fc6", 4096, activation="relu")
    b.fc("fc7", 4096, activation="relu")
    b.fc("fc8", 1000, softmax=True)
    return b.build()
