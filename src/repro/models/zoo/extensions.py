"""Extension zoo: networks *outside* the paper's eleven-model dataset.

The paper claims OmniBoost "is designed to be robust to new DNN models
added on top of the existing dataset" (contribution iii).  These three
architectures exist to test that claim: they are never part of
``MODEL_NAMES`` (the design-time dataset) and enter experiments only
through :func:`~repro.models.registry.register_model` — e.g. the
leave-one-out robustness benchmark and the ``custom_model`` example.

* **ResNet-18** — the smallest mainstream residual network; same block
  family as the dataset's ResNet-34 (near-distribution newcomer).
* **DenseNet-121** — dense connectivity: activations *grow* along each
  block, so late splits are expensive; a shape the dataset never shows
  the estimator.
* **EfficientNet-B0** — depthwise-separable MBConv blocks with
  squeeze-and-excitation; heavy on the depthwise kernels the GPU is
  bad at, like MobileNet but with very different layer statistics.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["resnet18", "densenet121", "efficientnet_b0"]

#: DenseNet-121 layers per dense block.
_DENSE_BLOCKS = (6, 12, 24, 16)
#: DenseNet growth rate.
_GROWTH = 32

#: EfficientNet-B0 stages: (expand_ratio, out_channels, repeats, kernel, stride).
_B0_STAGES = (
    (1, 16, 1, 3, 1),
    (6, 24, 2, 3, 2),
    (6, 40, 2, 5, 2),
    (6, 80, 3, 3, 2),
    (6, 112, 3, 5, 1),
    (6, 192, 4, 5, 2),
    (6, 320, 1, 3, 1),
)


def resnet18() -> ModelGraph:
    """ResNet-18: stem + 8 basic blocks + classifier (10 units)."""
    b = ModelBuilder("resnet18", TensorShape(3, 224, 224))
    b.conv("conv1", 64, kernel=7, stride=2, padding=3, pool=(3, 2), pool_padding=1)
    for stage_index, channels in enumerate((64, 128, 256, 512), start=1):
        for block_index in (1, 2):
            stride = 2 if stage_index > 1 and block_index == 1 else 1
            b.residual_basic(f"layer{stage_index}.{block_index}", channels, stride)
    b.pool_into_last(global_pool=True)
    b.fc("fc", 1000, softmax=True)
    return b.build()


def densenet121() -> ModelGraph:
    """DenseNet-121: stem + 58 dense layers + 3 transitions + classifier.

    63 partition units.  Each dense layer is one unit whose output is
    the concatenation of everything before it in the block, so the
    handoff cost of a split grows toward the end of each block —
    behaviour no dataset model exhibits.
    """
    b = ModelBuilder("densenet121", TensorShape(3, 224, 224))
    b.conv("conv0", 64, kernel=7, stride=2, padding=3, pool=(3, 2), pool_padding=1)
    channels = 64
    for block_index, num_layers in enumerate(_DENSE_BLOCKS, start=1):
        for layer_index in range(1, num_layers + 1):
            b.dense_layer(f"dense{block_index}.{layer_index}", _GROWTH)
            channels += _GROWTH
        if block_index < len(_DENSE_BLOCKS):
            channels //= 2
            b.conv(
                f"transition{block_index}",
                channels,
                kernel=1,
                padding=0,
                activation="relu",
            )
            b.pool_into_last(kernel=2, stride=2)
    b.pool_into_last(global_pool=True)
    b.fc("classifier", 1000, softmax=True)
    return b.build()


def efficientnet_b0() -> ModelGraph:
    """EfficientNet-B0: stem + 16 MBConv blocks + head + classifier.

    19 partition units dominated by depthwise convolutions and
    squeeze-and-excitation GEMMs.
    """
    b = ModelBuilder("efficientnet_b0", TensorShape(3, 224, 224))
    b.conv("stem", 32, kernel=3, stride=2, padding=1, activation="silu")
    for stage_index, (expand, out_channels, repeats, kernel, stride) in enumerate(
        _B0_STAGES, start=1
    ):
        for block_index in range(1, repeats + 1):
            block_stride = stride if block_index == 1 else 1
            b.mbconv(
                f"mb{stage_index}.{block_index}",
                out_channels,
                expand_ratio=expand,
                kernel=kernel,
                stride=block_stride,
            )
    b.conv("head", 1280, kernel=1, padding=0, activation="silu")
    b.pool_into_last(global_pool=True)
    b.fc("classifier", 1000, softmax=True)
    return b.build()
