"""VGG-13/16/19 (Simonyan & Zisserman) -- 13/16/19 partition units.

All three variants share the five-stage 3x3 convolution trunk followed
by the 4096-4096-1000 classifier; they differ only in convs per stage.
Max-pools are folded into the last conv of each stage, so the unit
counts match the paper's layer counts exactly (e.g. VGG-19 = 16 conv
units + 3 fc units).
"""

from __future__ import annotations

from typing import Sequence

from ..builder import ModelBuilder
from ..graph import ModelGraph
from ..layer import TensorShape

__all__ = ["vgg13", "vgg16", "vgg19"]

#: Convolutions per stage for each variant.
_STAGE_CONFIGS = {
    "vgg13": (2, 2, 2, 2, 2),
    "vgg16": (2, 2, 3, 3, 3),
    "vgg19": (2, 2, 4, 4, 4),
}
_STAGE_CHANNELS = (64, 128, 256, 512, 512)


def _build_vgg(name: str, convs_per_stage: Sequence[int]) -> ModelGraph:
    b = ModelBuilder(name, TensorShape(3, 224, 224))
    for stage_index, (num_convs, channels) in enumerate(
        zip(convs_per_stage, _STAGE_CHANNELS), start=1
    ):
        for conv_index in range(1, num_convs + 1):
            is_last_in_stage = conv_index == num_convs
            b.conv(
                f"conv{stage_index}_{conv_index}",
                channels,
                kernel=3,
                pool=(2, 2) if is_last_in_stage else None,
            )
    b.fc("fc6", 4096, activation="relu")
    b.fc("fc7", 4096, activation="relu")
    b.fc("fc8", 1000, softmax=True)
    return b.build()


def vgg13() -> ModelGraph:
    """VGG-13 (configuration B), 13 partition units."""
    return _build_vgg("vgg13", _STAGE_CONFIGS["vgg13"])


def vgg16() -> ModelGraph:
    """VGG-16 (configuration D), 16 partition units."""
    return _build_vgg("vgg16", _STAGE_CONFIGS["vgg16"])


def vgg19() -> ModelGraph:
    """VGG-19 (configuration E), 19 partition units."""
    return _build_vgg("vgg19", _STAGE_CONFIGS["vgg19"])
