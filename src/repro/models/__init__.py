"""DNN workload descriptions: layers, kernels, graphs and the model zoo."""

from .builder import ModelBuilder
from .graph import ModelGraph
from .layer import DTYPE_BYTES, KernelSpec, LayerSpec, TensorShape
from .registry import (
    EXTENSION_MODEL_NAMES,
    MODEL_NAMES,
    available_models,
    build_all_models,
    build_model,
    max_layer_count,
    register_model,
)

__all__ = [
    "DTYPE_BYTES",
    "KernelSpec",
    "LayerSpec",
    "ModelBuilder",
    "ModelGraph",
    "TensorShape",
    "EXTENSION_MODEL_NAMES",
    "MODEL_NAMES",
    "available_models",
    "build_all_models",
    "build_model",
    "max_layer_count",
    "register_model",
]
