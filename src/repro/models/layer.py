"""Layer- and kernel-level description of DNN workloads.

OmniBoost partitions each DNN into contiguous runs of *layers* and
profiles each layer as the sum of its *kernels* (paper Eq. 1).  This
module defines the two corresponding datatypes:

* :class:`~repro.hw.kernels.KernelSpec` (re-exported) -- one
  device-executable kernel with a FLOP and byte footprint.
* :class:`LayerSpec` -- one partitionable unit: an ordered bag of
  kernels plus the activation footprint entering and leaving the unit
  (needed to price pipeline-stage handoffs between devices).

Partitioning granularity
------------------------
A ``LayerSpec`` is the smallest unit the scheduler may move between
devices.  Plain feed-forward layers (conv, fc, depthwise conv) map
one-to-one onto units; auxiliary ops (pooling, normalization,
activations) are folded into the preceding unit, matching how inference
runtimes fuse them; and *branching* blocks (residual blocks, Inception
mixed blocks, SqueezeNet expand stages) are encapsulated as single
units so that a device boundary never cuts through a skip connection or
a concat.  ``DESIGN.md`` records the resulting unit counts per model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..hw.kernels import KernelSpec

__all__ = ["KernelSpec", "TensorShape", "LayerSpec", "DTYPE_BYTES"]

#: All activations are single-precision floats, matching the FP32
#: OpenCL/NEON path the paper uses through the ARM Compute Library.
DTYPE_BYTES = 4


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor flowing between layers.

    ``channels`` x ``height`` x ``width`` for feature maps; fully
    connected activations use ``height == width == 1`` and put the
    feature count in ``channels``.
    """

    channels: int
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ValueError(f"all shape dimensions must be positive, got {self}")

    @property
    def numel(self) -> int:
        """Number of elements in the tensor."""
        return self.channels * self.height * self.width

    @property
    def nbytes(self) -> int:
        """Size of the tensor in bytes (FP32)."""
        return self.numel * DTYPE_BYTES

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.channels}x{self.height}x{self.width}"


@dataclass(frozen=True)
class LayerSpec:
    """One partitionable unit of a DNN.

    Parameters
    ----------
    name:
        Unique (within the model) label, e.g. ``"conv3_2"`` or
        ``"mixed_6a"``.
    kernels:
        The device-executable kernels implementing the unit, in issue
        order.  Layer latency on a device is the sum of kernel
        latencies (paper Eq. 1).
    input_shape / output_shape:
        Activation shapes entering and leaving the unit.  The output
        size prices the transfer when the *next* unit lives on a
        different device.
    weight_bytes:
        Size of the unit's parameters.  Not part of the per-inference
        roofline (weights stay resident) but reported in model
        summaries and used by memory-pressure heuristics.
    role:
        Coarse functional tag (``"conv"``, ``"fc"``, ``"block"``...)
        used only for reporting.
    """

    name: str
    kernels: Tuple[KernelSpec, ...]
    input_shape: TensorShape
    output_shape: TensorShape
    weight_bytes: int = 0
    role: str = "conv"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if not self.kernels:
            raise ValueError(f"layer {self.name!r} must contain at least one kernel")
        if self.weight_bytes < 0:
            raise ValueError(f"layer {self.name!r} has negative weight_bytes")

    @property
    def flops(self) -> float:
        """Total FLOPs across the unit's kernels."""
        return sum(kernel.flops for kernel in self.kernels)

    @property
    def bytes_moved(self) -> float:
        """Total memory traffic across the unit's kernels."""
        return sum(kernel.bytes_moved for kernel in self.kernels)

    @property
    def output_bytes(self) -> int:
        """Bytes that must cross a device boundary placed after this unit."""
        return self.output_shape.nbytes

    @property
    def num_kernels(self) -> int:
        """Number of kernels in the unit."""
        return len(self.kernels)
