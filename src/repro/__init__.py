"""OmniBoost reproduction: multi-DNN scheduling on heterogeneous edge SoCs.

A from-scratch Python implementation of *OmniBoost: Boosting Throughput
of Heterogeneous Embedded Devices under Multi-DNN Workload* (Karatzas &
Anagnostopoulos, DAC 2023), including every substrate the paper relies
on: an analytical HiKey970 board model, the eleven-network model zoo, a
numpy autograd framework for the throughput estimator, the MCTS
scheduler, and the three comparison schedulers.

Quick start::

    from repro import SchedulingService, SystemBuilder, Workload

    builder = SystemBuilder().with_estimator(epochs=20)
    service = SchedulingService(builder)   # lazy: nothing trained yet
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    response = service.submit(mix)         # profile + train + search
    result = builder.simulator.measure(mix.models, response.mapping)
    print(result.average_throughput, service.stats().cache_hit_rate)

The original eager entry point is unchanged: ``build_system(epochs=20)``
returns the same fully-assembled ``OmniBoostSystem`` (it is now a thin
shim over :class:`~repro.builder.SystemBuilder`).
"""

from . import (
    analysis,
    baselines,
    core,
    estimator,
    evaluation,
    fleet,
    frontdoor,
    hw,
    models,
    nn,
    online,
    resilience,
    sim,
    slo,
    workloads,
)
from .builder import SystemBuilder
from .core import (
    MCTSConfig,
    OmniBoostScheduler,
    ScheduleDecision,
    ScheduleRequest,
    ScheduleResponse,
    Scheduler,
    SLOTarget,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from .engine import SchedulingEngine
from .estimator import (
    DistilledEstimator,
    EmbeddingSpace,
    EstimatorFault,
    FastPathPolicy,
    ThroughputEstimator,
)
from .evaluation import TimelineReport
from .fleet import (
    Autoscaler,
    Board,
    Cluster,
    ElasticPolicy,
    FleetResponse,
    FleetService,
    FleetStats,
)
from .frontdoor import (
    AsyncFrontDoor,
    FrontDoorStats,
    ShardedDecisionCache,
    clear_cache_dir,
    inspect_cache_dir,
)
from .hw import Platform, cloud_tier, hikey970
from .models import MODEL_NAMES, build_model
from .online import OnlineConfig, OnlineDecision, OnlineScheduler
from .pipeline import OmniBoostSystem, build_system
from .resilience import FaultPlan, FaultSpec, ResiliencePolicy
from .service import SchedulingService, ServiceStats
from .slo import AdmissionController, AdmissionDecision, SLOPolicy
from .sim import BoardSimulator, BoardUnresponsiveError, Mapping, SimConfig
from .workloads import (
    ArrivalEvent,
    ArrivalTrace,
    ChaosPlan,
    FailureEvent,
    TraceConfig,
    Workload,
    WorkloadGenerator,
    canonical_signature,
    churn_scenario,
    churn_scenario_names,
    fleet_scenario,
    fleet_scenario_names,
    generate_trace,
)

__version__ = "1.9.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ArrivalEvent",
    "ArrivalTrace",
    "AsyncFrontDoor",
    "Autoscaler",
    "Board",
    "BoardSimulator",
    "BoardUnresponsiveError",
    "ChaosPlan",
    "Cluster",
    "DistilledEstimator",
    "ElasticPolicy",
    "EmbeddingSpace",
    "EstimatorFault",
    "FailureEvent",
    "FastPathPolicy",
    "FaultPlan",
    "FaultSpec",
    "FleetResponse",
    "FleetService",
    "FleetStats",
    "FrontDoorStats",
    "MCTSConfig",
    "MODEL_NAMES",
    "Mapping",
    "OmniBoostScheduler",
    "OmniBoostSystem",
    "OnlineConfig",
    "OnlineDecision",
    "OnlineScheduler",
    "Platform",
    "ResiliencePolicy",
    "SLOPolicy",
    "SLOTarget",
    "ScheduleDecision",
    "ScheduleRequest",
    "ScheduleResponse",
    "Scheduler",
    "SchedulingEngine",
    "SchedulingService",
    "ServiceStats",
    "ShardedDecisionCache",
    "SimConfig",
    "SystemBuilder",
    "ThroughputEstimator",
    "TimelineReport",
    "TraceConfig",
    "Workload",
    "WorkloadGenerator",
    "__version__",
    "analysis",
    "available_schedulers",
    "baselines",
    "build_model",
    "build_system",
    "canonical_signature",
    "churn_scenario",
    "churn_scenario_names",
    "clear_cache_dir",
    "cloud_tier",
    "core",
    "estimator",
    "evaluation",
    "fleet",
    "fleet_scenario",
    "fleet_scenario_names",
    "frontdoor",
    "generate_trace",
    "get_scheduler",
    "hikey970",
    "hw",
    "inspect_cache_dir",
    "models",
    "nn",
    "online",
    "register_scheduler",
    "resilience",
    "sim",
    "slo",
    "unregister_scheduler",
    "workloads",
]
