"""OmniBoost reproduction: multi-DNN scheduling on heterogeneous edge SoCs.

A from-scratch Python implementation of *OmniBoost: Boosting Throughput
of Heterogeneous Embedded Devices under Multi-DNN Workload* (Karatzas &
Anagnostopoulos, DAC 2023), including every substrate the paper relies
on: an analytical HiKey970 board model, the eleven-network model zoo, a
numpy autograd framework for the throughput estimator, the MCTS
scheduler, and the three comparison schedulers.

Quick start::

    from repro import build_system, Workload

    system = build_system(epochs=20)      # profile + train the estimator
    mix = Workload.from_names(["vgg19", "resnet50", "mobilenet", "alexnet"])
    decision = system.omniboost.schedule(mix)
    result = system.simulator.measure(mix.models, decision.mapping)
    print(result.average_throughput)
"""

from . import baselines, core, estimator, evaluation, hw, models, nn, sim, workloads
from .core import MCTSConfig, OmniBoostScheduler, ScheduleDecision, Scheduler
from .estimator import EmbeddingSpace, ThroughputEstimator
from .hw import Platform, hikey970
from .models import MODEL_NAMES, build_model
from .pipeline import OmniBoostSystem, build_system
from .sim import BoardSimulator, BoardUnresponsiveError, Mapping, SimConfig
from .workloads import Workload, WorkloadGenerator

__version__ = "1.1.0"

__all__ = [
    "BoardSimulator",
    "BoardUnresponsiveError",
    "EmbeddingSpace",
    "MCTSConfig",
    "MODEL_NAMES",
    "Mapping",
    "OmniBoostScheduler",
    "OmniBoostSystem",
    "Platform",
    "ScheduleDecision",
    "Scheduler",
    "SimConfig",
    "ThroughputEstimator",
    "Workload",
    "WorkloadGenerator",
    "__version__",
    "baselines",
    "build_model",
    "build_system",
    "core",
    "estimator",
    "evaluation",
    "hikey970",
    "hw",
    "models",
    "nn",
    "sim",
    "workloads",
]
