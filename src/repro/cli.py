"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the lifecycle of a deployment:

* ``models``   -- list the zoo with per-model footprints;
* ``profile``  -- kernel-profile the zoo and print latency tables;
* ``train``    -- run the design-time pipeline and save a checkpoint;
* ``schedule`` -- schedule a mix (optionally from a checkpoint) and
  report measured throughput for all four schedulers;
* ``motivate`` -- the Fig.-1 motivational sweep;
* ``space``    -- design-space size arithmetic for a mix;
* ``power``    -- throughput-vs-power comparison of the paper objective
  against the energy-aware extension on one mix.

All commands run against the simulated HiKey970.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

import numpy as np

from . import build_system
from .estimator import (
    EmbeddingSpace,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
)
from .evaluation import (
    RuntimeCostModel,
    format_table,
    paper_combination_estimate,
    total_contiguous_mappings,
)
from .hw import BIG_CPU_ID, GPU_ID, hikey970
from .models import (
    EXTENSION_MODEL_NAMES,
    MODEL_NAMES,
    build_all_models,
    build_model,
)
from .sim import BoardSimulator, KernelProfiler, Mapping
from .workloads import Workload, WorkloadGenerator, random_two_stage_mapping

__all__ = ["main"]


def _cmd_models(args: argparse.Namespace) -> int:
    names = list(MODEL_NAMES)
    if args.all:
        names += list(EXTENSION_MODEL_NAMES)
    rows = []
    for name in names:
        graph = build_model(name)
        dataset = "paper" if name in MODEL_NAMES else "extension"
        rows.append(
            [
                name,
                dataset,
                graph.num_layers,
                f"{graph.total_flops / 1e9:.2f}",
                f"{graph.total_weight_bytes / 1e6:.1f}",
                str(graph.input_shape),
            ]
        )
    print(
        format_table(
            ["model", "dataset", "units", "GFLOPs", "weights MB", "input"], rows
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    platform = hikey970()
    profiler = KernelProfiler(platform)
    table = profiler.profile(build_all_models(), seed=args.seed)
    device_names = [device.name for device in platform.devices]
    rows = []
    for name in MODEL_NAMES:
        per_device = table.tables[name].sum(axis=1) * 1000
        rows.append([name] + [f"{value:.1f}" for value in per_device])
    print(format_table(["model (total ms/inference)"] + device_names, rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    platform = hikey970()
    simulator = BoardSimulator(platform)
    table = KernelProfiler(platform).profile(build_all_models(), seed=args.seed)
    embedding = EmbeddingSpace(table, MODEL_NAMES)
    estimator = ThroughputEstimator(
        embedding, rng=np.random.default_rng(args.seed + 1)
    )
    generator = WorkloadGenerator(seed=args.seed + 2)
    dataset = EstimatorDatasetBuilder(simulator, generator, estimator).build(
        num_samples=args.samples, measurement_seed=args.seed + 3
    )
    trainer = EstimatorTrainer(estimator)
    history = trainer.train(
        dataset,
        epochs=args.epochs,
        train_size=int(round(args.samples * 0.8)),
        seed=args.seed + 4,
    )
    print(
        f"trained {estimator.num_parameters}-parameter estimator: "
        f"val L1 {history.final_val_loss:.4f} in {history.wall_time_s:.0f}s"
    )
    estimator.save(args.checkpoint)
    print(f"checkpoint saved to {args.checkpoint}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from .core import MCTSConfig

    mix = Workload.from_names(args.mix)
    use_checkpoint = bool(args.checkpoint) and os.path.exists(args.checkpoint)
    system = build_system(
        num_training_samples=args.samples,
        epochs=args.epochs,
        train=not use_checkpoint,
        mcts_config=MCTSConfig(
            seed=args.seed + 5,
            eval_batch_size=args.eval_batch_size,
            use_eval_cache=not args.no_eval_cache,
        ),
        seed=args.seed,
    )
    if use_checkpoint:
        system.estimator.load(args.checkpoint)
    cost_model = RuntimeCostModel()
    rows = []
    baseline_throughput: Optional[float] = None
    for scheduler in system.schedulers:
        decision = scheduler.schedule(mix)
        result = system.simulator.measure(mix.models, decision.mapping)
        if baseline_throughput is None:
            baseline_throughput = result.average_throughput
        rows.append(
            [
                scheduler.name,
                f"{result.average_throughput:.2f}",
                f"{result.average_throughput / baseline_throughput:.2f}",
                f"{cost_model.decision_time(decision.cost):.1f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "T (inf/s)", "normalized", "board decision (s)"], rows
        )
    )
    cache_hits = system.omniboost.last_result.cache_hits
    cache_misses = system.omniboost.last_result.cache_misses
    print(
        f"OmniBoost eval cache: {cache_hits} hits / {cache_misses} misses "
        f"(batch size {args.eval_batch_size})"
    )
    return 0


def _cmd_motivate(args: argparse.Namespace) -> int:
    platform = hikey970()
    simulator = BoardSimulator(platform)
    mix = Workload.from_names(["alexnet", "mobilenet", "vgg19", "squeezenet"])
    # Continuous benchmark loop (paper Section II): demand unbounded.
    unbounded = [1e9] * mix.num_dnns
    baseline = simulator.simulate(
        mix.models,
        Mapping.single_device(mix.models, GPU_ID),
        offered_rates=unbounded,
    ).average_throughput
    rng = np.random.default_rng(args.seed)
    normalized = []
    for _ in range(args.setups):
        mapping = random_two_stage_mapping(mix.models, rng, (GPU_ID, BIG_CPU_ID))
        measured = simulator.measure(
            mix.models, mapping, rng=rng, offered_rates=unbounded
        )
        normalized.append(measured.average_throughput / baseline)
    values = np.array(normalized)
    print(
        f"{args.setups} random set-ups vs GPU-only baseline: "
        f"best {values.max():.2f}, median {np.median(values):.2f}, "
        f"worst {values.min():.2f}"
    )
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    mix = Workload.from_names(args.mix)
    total_layers = mix.total_layers
    print(f"mix: {', '.join(mix.model_names)} ({total_layers} layers)")
    print(
        f"paper estimate C({total_layers}, 3) = "
        f"{paper_combination_estimate(total_layers, 3):,}"
    )
    print(
        "exact stage-capped contiguous mappings = "
        f"{total_contiguous_mappings(mix.models, 3, 3):,}"
    )
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from .core import EnergyAwareObjective, MCTSConfig, OmniBoostScheduler
    from .hw import hikey970_power

    mix = Workload.from_names(args.mix)
    system = build_system(
        num_training_samples=args.samples, epochs=args.epochs, seed=args.seed
    )
    power_model = hikey970_power()
    energy_objective = EnergyAwareObjective(
        power_model, system.platform, system.latency_table
    )
    rows = []
    for label, objective in (
        ("throughput (paper)", None),
        ("inferences/joule", energy_objective),
    ):
        scheduler = OmniBoostScheduler(
            system.estimator,
            config=MCTSConfig(
                seed=args.seed + 5,
                eval_batch_size=args.eval_batch_size,
                use_eval_cache=not args.no_eval_cache,
            ),
            objective=objective,
        )
        decision = scheduler.schedule(mix)
        measured = system.simulator.simulate(mix.models, decision.mapping)
        report = power_model.report(system.platform, measured)
        rows.append(
            [
                label,
                f"{measured.average_throughput:.2f}",
                f"{report.total_w:.2f}",
                f"{report.inferences_per_joule:.3f}",
            ]
        )
    print(format_table(["objective", "T (inf/s)", "power (W)", "inf/J"], rows))
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="OmniBoost reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list the model zoo")
    models.add_argument(
        "--all", action="store_true", help="include extension models"
    )
    models.set_defaults(fn=_cmd_models)

    profile = sub.add_parser("profile", help="kernel-profile the zoo")
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(fn=_cmd_profile)

    train = sub.add_parser("train", help="train and checkpoint the estimator")
    train.add_argument("--samples", type=int, default=500)
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", type=str, default="estimator.npz")
    train.set_defaults(fn=_cmd_train)

    schedule = sub.add_parser("schedule", help="schedule a mix, compare schedulers")
    schedule.add_argument("mix", nargs="+", help=f"models: {', '.join(MODEL_NAMES)}")
    schedule.add_argument("--checkpoint", type=str, default="")
    schedule.add_argument("--samples", type=int, default=300)
    schedule.add_argument("--epochs", type=int, default=25)
    schedule.add_argument("--seed", type=int, default=0)
    schedule.add_argument(
        "--eval-batch-size",
        type=_positive_int,
        default=1,
        help="MCTS rollouts scored per vectorized estimator call "
        "(1 = the paper's sequential semantics)",
    )
    schedule.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="disable the MCTS transposition cache (re-query repeated "
        "rollout leaves)",
    )
    schedule.set_defaults(fn=_cmd_schedule)

    motivate = sub.add_parser("motivate", help="run the Fig.-1 sweep")
    motivate.add_argument("--setups", type=int, default=200)
    motivate.add_argument("--seed", type=int, default=0)
    motivate.set_defaults(fn=_cmd_motivate)

    space = sub.add_parser("space", help="design-space size of a mix")
    space.add_argument("mix", nargs="+")
    space.set_defaults(fn=_cmd_space)

    power = sub.add_parser(
        "power", help="throughput-vs-power objectives on one mix"
    )
    power.add_argument("mix", nargs="+")
    power.add_argument("--samples", type=int, default=300)
    power.add_argument("--epochs", type=int, default=25)
    power.add_argument("--seed", type=int, default=0)
    power.add_argument("--eval-batch-size", type=_positive_int, default=1)
    power.add_argument("--no-eval-cache", action="store_true")
    power.set_defaults(fn=_cmd_power)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
