"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the lifecycle of a deployment:

* ``models``      -- list the zoo with per-model footprints;
* ``profile``     -- kernel-profile the zoo and print latency tables;
* ``train``       -- run the design-time pipeline and save a checkpoint;
* ``schedule``    -- schedule a mix (optionally from a checkpoint) and
  report measured throughput for every registered scheduler (or the
  ``--scheduler`` selection);
* ``serve-batch`` -- answer a JSON file of mixes through the
  :class:`~repro.service.SchedulingService` (decision cache + pooled
  concurrent MCTS) and report per-request and service statistics;
* ``serve-trace`` -- replay a named churn scenario (or a trace JSON
  file) through the online subsystem: warm-started re-search per
  arrival/departure, per-event timeline, optional JSON report;
* ``fleet-serve`` -- serve a mix burst (or replay a fleet churn trace
  with ``--trace``) across a cluster of named board presets through
  the :class:`~repro.fleet.FleetService`: estimator-scored placement,
  per-board pooled search, fleet stats rollup; ``--chaos BOARD@TIME``
  kills boards mid-replay (orphans recover by warm re-search) and
  ``--elastic`` attaches the policy-driven autoscaler;
* ``lint``        -- doctrine static analysis over the repo's own
  source (:mod:`repro.analysis`): determinism, wall-clock confinement,
  count-based perf gates, batch invariance, canonical cache keys,
  export/docs sync;
* ``motivate``    -- the Fig.-1 motivational sweep;
* ``space``       -- design-space size arithmetic for a mix;
* ``power``       -- throughput-vs-power comparison of the paper objective
  against the energy-aware extension on one mix.

All commands run against the simulated HiKey970 and assemble it
through the lazy :class:`~repro.builder.SystemBuilder`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import numpy as np

from .analysis.runner import build_arg_parser as lint_arg_parser
from .analysis.runner import run_from_args as lint_run_from_args
from .builder import SystemBuilder
from .core.registry import available_schedulers
from .evaluation import (
    RuntimeCostModel,
    format_table,
    paper_combination_estimate,
    total_contiguous_mappings,
)
from .hw import BIG_CPU_ID, GPU_ID, hikey970
from .models import (
    EXTENSION_MODEL_NAMES,
    MODEL_NAMES,
    build_all_models,
    build_model,
)
from .service import SchedulingService
from .sim import BoardSimulator, KernelProfiler, Mapping
from .workloads import Workload, random_two_stage_mapping

__all__ = ["main"]


def _cmd_models(args: argparse.Namespace) -> int:
    names = list(MODEL_NAMES)
    if args.all:
        names += list(EXTENSION_MODEL_NAMES)
    rows = []
    for name in names:
        graph = build_model(name)
        dataset = "paper" if name in MODEL_NAMES else "extension"
        rows.append(
            [
                name,
                dataset,
                graph.num_layers,
                f"{graph.total_flops / 1e9:.2f}",
                f"{graph.total_weight_bytes / 1e6:.1f}",
                str(graph.input_shape),
            ]
        )
    print(
        format_table(
            ["model", "dataset", "units", "GFLOPs", "weights MB", "input"], rows
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    platform = hikey970()
    profiler = KernelProfiler(platform)
    table = profiler.profile(build_all_models(), seed=args.seed)
    device_names = [device.name for device in platform.devices]
    rows = []
    for name in MODEL_NAMES:
        per_device = table.tables[name].sum(axis=1) * 1000
        rows.append([name] + [f"{value:.1f}" for value in per_device])
    print(format_table(["model (total ms/inference)"] + device_names, rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    builder = SystemBuilder(seed=args.seed).with_estimator(
        num_training_samples=args.samples, epochs=args.epochs
    )
    estimator = builder.estimator  # triggers the design-time pipeline
    history = builder.training_history
    print(
        f"trained {estimator.num_parameters}-parameter estimator: "
        f"val L1 {history.final_val_loss:.4f} in {history.wall_time_s:.0f}s"
    )
    estimator.save(args.checkpoint)
    print(f"checkpoint saved to {args.checkpoint}")
    return 0


def _make_builder(args: argparse.Namespace) -> SystemBuilder:
    """A builder from the shared training/search CLI flags."""
    from .core import MCTSConfig

    builder = SystemBuilder(seed=args.seed).with_mcts_config(
        MCTSConfig(
            budget=getattr(args, "budget", None) or MCTSConfig.budget,
            seed=args.seed + 5,
            eval_batch_size=getattr(args, "eval_batch_size", 1),
            use_eval_cache=not getattr(args, "no_eval_cache", False),
        )
    )
    use_compiled = not getattr(args, "no_compiled_inference", False)
    checkpoint = getattr(args, "checkpoint", "")
    if checkpoint and os.path.exists(checkpoint):
        builder.with_estimator(train=False, use_compiled=use_compiled)
        builder.from_checkpoint(checkpoint)
        print(f"loaded estimator checkpoint {checkpoint}")
    else:
        builder.with_estimator(
            num_training_samples=args.samples,
            epochs=args.epochs,
            use_compiled=use_compiled,
        )
    return builder


def _validate_scheduler_names(names) -> list:
    """Fail fast (before any training) on unknown scheduler names."""
    canonical = [name.strip().lower() for name in names]
    known = available_schedulers()
    unknown = [name for name in canonical if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown scheduler(s): {', '.join(unknown)}; "
            f"registered: {', '.join(known)}"
        )
    return canonical


def _cmd_schedule(args: argparse.Namespace) -> int:
    mix = Workload.from_names(args.mix)
    names = (
        _validate_scheduler_names(args.scheduler)
        if args.scheduler
        else list(available_schedulers())
    )
    builder = _make_builder(args)
    cost_model = RuntimeCostModel()
    omniboost = None
    outcomes = []
    for name in names:
        scheduler = builder.build_scheduler(name)
        decision = scheduler.schedule(mix)
        if name == "omniboost":
            omniboost = scheduler
        result = builder.simulator.measure(mix.models, decision.mapping)
        outcomes.append((name, scheduler, decision, result))
    # Normalize against the GPU-only baseline when it is in the
    # selection (whatever its position); the first row otherwise.
    anchor = next(
        (o for o in outcomes if o[0] == "baseline"), outcomes[0]
    )[3].average_throughput
    rows = [
        [
            scheduler.name,
            f"{result.average_throughput:.2f}",
            f"{result.average_throughput / anchor:.2f}",
            f"{cost_model.decision_time(decision.cost):.1f}",
        ]
        for name, scheduler, decision, result in outcomes
    ]
    print(
        format_table(
            ["scheduler", "T (inf/s)", "normalized", "board decision (s)"], rows
        )
    )
    if omniboost is not None and omniboost.last_result is not None:
        cache_hits = omniboost.last_result.cache_hits
        cache_misses = omniboost.last_result.cache_misses
        print(
            f"OmniBoost eval cache: {cache_hits} hits / {cache_misses} misses "
            f"(batch size {args.eval_batch_size})"
        )
    return 0


def _load_mix_file(path: str):
    """Parse a serve-batch JSON file into (model names, knobs) entries.

    Accepted shapes: a top-level list (or ``{"mixes": [...]}``) whose
    entries are either lists of model names or objects
    ``{"models": [...], "budget": int, "priority": int, "id": str}``.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("mixes", payload.get("requests"))
    if not isinstance(payload, list) or not payload:
        raise SystemExit(
            f"{path}: expected a non-empty JSON list of mixes "
            '(or {"mixes": [...]})'
        )
    entries = []
    for index, entry in enumerate(payload):
        if isinstance(entry, list):
            entries.append((entry, {}))
        elif isinstance(entry, dict):
            models = entry.get("models")
            if not models:
                raise SystemExit(f"{path}: mix #{index} has no 'models' list")
            knobs = {}
            if entry.get("budget") is not None:
                budget = int(entry["budget"])
                if budget < 1:
                    raise SystemExit(
                        f"{path}: mix #{index}: budget must be >= 1, got {budget}"
                    )
                knobs["budget"] = budget
            if entry.get("priority") is not None:
                knobs["priority"] = int(entry["priority"])
            knobs["request_id"] = str(entry.get("id", index))
            entries.append((models, knobs))
        else:
            raise SystemExit(f"{path}: mix #{index} must be a list or object")
    return entries


def _frontdoor_kwargs(args: argparse.Namespace) -> dict:
    """Service kwargs of the front-door flags (cache dir, fast path)."""
    kwargs = {}
    if getattr(args, "cache_dir", ""):
        kwargs["cache_dir"] = args.cache_dir
    if getattr(args, "distill", False):
        from .estimator.distill import FastPathPolicy

        kwargs["fast_path"] = FastPathPolicy()
    return kwargs


def _serve_requests(service, requests, args: argparse.Namespace):
    """One batch call, or pooled async windows under ``--window-size``.

    Without the flag the batch goes through ``schedule_many`` whole —
    today's path.  With it, requests stream through the
    :class:`~repro.frontdoor.AsyncFrontDoor` in windows, and
    ``--frontdoor-report`` captures the ingress counters.
    """
    if args.window_size is None:
        responses = service.schedule_many(requests)
        stats = None
    else:
        from .frontdoor import AsyncFrontDoor

        door = AsyncFrontDoor(service, window_size=args.window_size)
        responses = door.serve(requests)
        stats = door.stats
    if getattr(args, "frontdoor_report", ""):
        import json
        from dataclasses import asdict

        report = {
            "window_size": args.window_size,
            "frontdoor": stats.to_dict() if stats is not None else None,
            "service": asdict(service.stats()),
        }
        with open(args.frontdoor_report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"front-door report written to {args.frontdoor_report}")
    return responses


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from .core import ScheduleRequest

    entries = _load_mix_file(args.mix_file)
    (scheduler_name,) = _validate_scheduler_names([args.scheduler])
    builder = _make_builder(args)
    service = SchedulingService(
        builder, scheduler=scheduler_name, **_frontdoor_kwargs(args)
    )
    requests = [
        ScheduleRequest(
            workload=Workload.from_names(models),
            request_id=str(knobs.get("request_id", index)),
            budget=knobs.get("budget"),
            priority=knobs.get("priority", 0),
        )
        for index, (models, knobs) in enumerate(entries)
    ]
    responses = _serve_requests(service, requests, args)
    rows = []
    for request, response in zip(requests, responses):
        row = [
            response.request_id,
            "+".join(request.workload.model_names),
            response.cache_status,
            f"{response.expected_score:.3f}",
            f"{response.measured_wall_time_s * 1000:.0f}",
        ]
        if args.measure:
            measured = builder.simulator.measure(
                request.workload.models, response.mapping
            )
            row.append(f"{measured.average_throughput:.2f}")
        rows.append(row)
    # Latency, not attributable compute: concurrent searches overlap,
    # so per-request latencies do not sum to the batch wall time.
    headers = ["request", "mix", "cache", "score", "latency ms"]
    if args.measure:
        headers.append("T (inf/s)")
    print(format_table(headers, rows))
    stats = service.stats()
    print(
        f"\nservice: {stats.requests_served} requests, "
        f"cache hit rate {stats.cache_hit_rate:.0%} "
        f"({stats.cache_hits} hits / {stats.cache_misses} misses, "
        f"{stats.cache_evictions} evicted, "
        f"{stats.cache_persisted} persisted), "
        f"{stats.pooled_eval_batches} pooled estimator batches "
        f"(mean size {stats.mean_pooled_batch_size:.1f}), "
        f"{stats.estimator_queries_actual:.0f} estimator queries paid "
        f"of {stats.estimator_queries:.0f} budgeted"
    )
    if stats.distilled_queries:
        print(
            f"fast path: {stats.distilled_queries:.0f} student queries, "
            f"{stats.distilled_pruned:.0f} candidates pruned before the "
            "full estimator"
        )
    return 0


def _cmd_serve_trace(args: argparse.Namespace) -> int:
    from .evaluation import write_timeline_json
    from .online import OnlineConfig
    from .workloads import ArrivalTrace, churn_scenario, churn_scenario_names

    if args.trace_file:
        trace = ArrivalTrace.from_json(args.trace_file)
    else:
        if args.scenario not in churn_scenario_names():
            raise SystemExit(
                f"unknown churn scenario {args.scenario!r}; available: "
                f"{', '.join(churn_scenario_names())}"
            )
        trace = churn_scenario(args.scenario, seed=args.trace_seed)
    if args.events is not None:
        trace = trace.truncated(args.events)
    if not len(trace):
        raise SystemExit("trace has no events")
    slo = _slo_policy(args)
    journal = _journal_args(args, slo)
    builder = _make_builder(args)
    service = SchedulingService(builder, resilience=_resilience_policy(args))
    online = OnlineConfig(
        warm=not args.no_warm,
        warm_patience=args.warm_patience,
        min_overlap=args.min_overlap,
    )
    if args.resume:
        try:
            report = service.resume_trace(
                trace, journal, online=online, slo=slo
            )
        except ValueError as error:
            raise SystemExit(f"--resume: {error}") from None
    else:
        report = service.run_trace(
            trace, online=online, slo=slo, checkpoint=journal
        )
    print(report.event_table())
    print(f"\n{report.summary()}")
    stats = service.stats()
    print(
        f"service: {stats.trace_reschedules} re-schedules "
        f"({stats.trace_warm_reschedules} warm), "
        f"{stats.pooled_eval_batches} pooled estimator batches, "
        f"{stats.estimator_queries_actual:.0f} estimator queries paid "
        f"of {stats.estimator_queries:.0f} budgeted"
    )
    if stats.faults_detected or stats.degraded_decisions:
        tiers = dict(sorted(stats.decisions_by_tier.items()))
        print(
            f"resilience: {stats.faults_detected} fault(s) detected, "
            f"{stats.cache_corruptions} cache corruption(s), "
            f"{stats.degraded_decisions} degraded decision(s) {tiers}, "
            f"{stats.tier_step_downs} step-down(s), "
            f"{stats.tier_step_ups} step-up(s), "
            f"{stats.tier_probes} probe(s)"
        )
    if stats.slo_requests:
        pcts = ", ".join(
            f"p{p}: {ratio:.2f}"
            for p, ratio in stats.slo_percentiles().items()
        )
        print(
            f"slo: {stats.slo_attained}/{stats.slo_requests} attained "
            f"({pcts}); rejections {stats.rejections_by_priority}, "
            f"queued {stats.queued_by_priority}, "
            f"preemptions {stats.preemptions_by_priority}"
        )
    if args.report:
        write_timeline_json(report, args.report)
        print(f"timeline report written to {args.report}")
    return 0


def _chaos_plan(args: argparse.Namespace):
    """The :class:`~repro.workloads.ChaosPlan` of the ``--chaos`` flags."""
    from .workloads import ChaosPlan, FailureEvent

    if not args.chaos:
        return None
    if not args.trace:
        raise SystemExit("--chaos only applies to --trace replays")
    failures = []
    for spec in args.chaos:
        board, sep, time_text = spec.rpartition("@")
        try:
            time_s = float(time_text) if sep and board else None
        except ValueError:
            time_s = None
        if time_s is None:
            raise SystemExit(
                f"--chaos expects BOARD@TIME (e.g. edge1@10.0), got {spec!r}"
            )
        try:
            failures.append(FailureEvent(time_s=time_s, board=board))
        except ValueError as error:
            # e.g. a negative timestamp: a usage error, not a traceback.
            raise SystemExit(f"--chaos {spec!r}: {error}") from None
    failures.sort(key=lambda failure: failure.time_s)
    try:
        return ChaosPlan(tuple(failures), name="cli")
    except ValueError as error:
        raise SystemExit(f"--chaos: {error}") from None


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared fault/checkpoint flag group (serve-trace / fleet-serve)."""
    parser.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="KIND@CALL[xN]",
        help="inject a deterministic fault at an estimator call count "
        "(repeatable): estimator-nan, estimator-inf, plan-error at "
        "forward CALL, or cache-corrupt at lookup CALL; xN widens the "
        "window to N calls (e.g. estimator-nan@3x5); arms the "
        "degradation ladder",
    )
    parser.add_argument(
        "--journal",
        type=str,
        default="",
        metavar="PATH",
        help="crash-consistent trace journal: every committed event "
        "group is fsynced here so --resume can continue the replay "
        "byte-identically after a crash",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the replay from --journal instead of starting "
        "over (completed groups are re-emitted, serving state is "
        "restored, the remainder re-plans and keeps journaling)",
    )


def _resilience_policy(args: argparse.Namespace):
    """The :class:`~repro.resilience.ResiliencePolicy` of the flags.

    ``--faults`` specs are parsed and composed into a
    :class:`~repro.resilience.FaultPlan` (sorted by call count; plan
    validation errors become one-line usage errors).  Returns ``None``
    when no fault flag was given — the byte-identical default.
    """
    from .resilience import FaultPlan, FaultSpec, ResiliencePolicy

    if not args.faults:
        return None
    specs = []
    for text in args.faults:
        try:
            specs.append(FaultSpec.parse(text))
        except ValueError as error:
            raise SystemExit(f"--faults {text!r}: {error}") from None
    specs.sort(key=lambda spec: spec.at_call)
    try:
        plan = FaultPlan(tuple(specs), name="cli")
    except ValueError as error:
        raise SystemExit(f"--faults: {error}") from None
    return ResiliencePolicy(faults=plan)


def _journal_args(args: argparse.Namespace, slo) -> Optional[str]:
    """Validate the ``--journal``/``--resume`` combination.

    Returns the journal path (or ``None``) for ``run_trace``; usage
    conflicts — resuming without a journal, journaling under an
    *enforcing* SLO policy — exit with a one-line error instead of
    surfacing as tracebacks from the service layer.
    """
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")
    if args.journal and slo is not None and slo.enforced:
        raise SystemExit(
            "--journal does not cover the SLO enforcement queue; "
            "add --slo-observe or drop --slo"
        )
    return args.journal or None


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    from .core import MCTSConfig
    from .evaluation import write_timeline_json
    from .fleet import Cluster, ElasticPolicy, FleetService
    from .online import OnlineConfig
    from .workloads import fleet_scenario, fleet_scenario_names

    (scheduler_name,) = _validate_scheduler_names([args.scheduler])
    chaos = _chaos_plan(args)
    slo = _slo_policy(args)
    journal = _journal_args(args, slo)
    if (args.journal or args.resume) and not args.trace:
        raise SystemExit("--journal/--resume only apply to --trace replays")
    if args.journal and args.elastic:
        raise SystemExit(
            "--journal does not cover elastic fleet-composition "
            "changes; drop --elastic"
        )
    elastic = None
    if args.elastic:
        if not args.trace:
            raise SystemExit("--elastic only applies to --trace replays")
        elastic = ElasticPolicy(
            preset=args.elastic_preset,
            max_boards=args.elastic_max_boards,
            seed=args.seed,
        )
    cluster = Cluster.from_presets(
        [(f"edge{index}", preset) for index, preset in enumerate(args.boards)],
        seed=args.seed,
        estimator={
            "num_training_samples": args.samples,
            "epochs": args.epochs,
        },
        mcts_config=MCTSConfig(
            budget=args.budget or MCTSConfig.budget, seed=args.seed + 5
        ),
    )
    service = FleetService(
        cluster,
        scheduler=scheduler_name,
        placement=args.placement,
        slo=slo,
        resilience=_resilience_policy(args),
        **_frontdoor_kwargs(args),
    )
    boards = ", ".join(
        f"{board.name}={board.preset}" for board in cluster
    )
    print(f"fleet: {boards}\n")

    if args.trace:
        preset = fleet_scenario(args.scenario)
        if preset.build_trace is None:
            raise SystemExit(
                f"fleet scenario {args.scenario!r} has no churn trace; "
                "traced scenarios: "
                + ", ".join(
                    name
                    for name in fleet_scenario_names()
                    if fleet_scenario(name).build_trace is not None
                )
            )
        trace = preset.build_trace(args.trace_seed)
        if args.events is not None:
            trace = trace.truncated(args.events)
        online = OnlineConfig(warm_patience=args.warm_patience)
        if args.resume:
            try:
                report = service.resume_trace(
                    trace, journal, online=online, chaos=chaos
                )
            except ValueError as error:
                raise SystemExit(f"--resume: {error}") from None
        else:
            report = service.run_trace(
                trace,
                online=online,
                chaos=chaos,
                elastic=elastic,
                checkpoint=journal,
            )
        print(report.event_table())
        print(f"\n{report.summary()}")
        for board in report.boards:
            sub = report.for_board(board)
            print(
                f"  {board}: {len(sub.records)} events, "
                f"{sub.warm_fraction:.0%} warm"
            )
        extent = report.fleet_size_extent
        if extent is not None:
            print(
                f"  fleet size {extent[0]}-{extent[1]} "
                f"(final {report.final_fleet_size}): "
                f"{report.failure_events} failure(s), "
                f"{report.recovered_events} recovered, "
                f"{report.scale_out_events} scale-out(s), "
                f"{report.scale_in_events} scale-in(s), "
                f"{report.drained_events} drained"
            )
        print(f"\n{service.stats().summary()}")
        if args.report:
            write_timeline_json(report, args.report)
            print(f"timeline report written to {args.report}")
        return 0

    if args.mix_file:
        entries = _load_mix_file(args.mix_file)
        mixes = [
            (Workload.from_names(models), knobs) for models, knobs in entries
        ]
    else:
        mixes = [
            (workload, {"request_id": str(index)})
            for index, workload in enumerate(
                fleet_scenario(args.scenario).build_mixes(args.seed)
            )
        ]
    from .core import ScheduleRequest

    requests = [
        ScheduleRequest(
            workload=workload,
            request_id=str(knobs.get("request_id", index)),
            budget=knobs.get("budget"),
            priority=knobs.get("priority", 0),
        )
        for index, (workload, knobs) in enumerate(mixes)
    ]
    responses = _serve_requests(service, requests, args)
    rows = []
    for request, response in zip(requests, responses):
        if not response.parts:
            rows.append(
                [
                    response.request_id,
                    "+".join(request.workload.model_names),
                    "-",
                    "no",
                    response.admission,
                    "-",
                    "-",
                ]
            )
            continue
        for placement, part in response.parts:
            rows.append(
                [
                    response.request_id,
                    "+".join(placement.workload.model_names),
                    placement.board,
                    "yes" if response.split else "no",
                    part.cache_status,
                    f"{part.expected_score:.3f}",
                    f"{part.measured_wall_time_s * 1000:.0f}",
                ]
            )
    print(
        format_table(
            [
                "request",
                "mix",
                "board",
                "split",
                "cache",
                "score",
                "latency ms",
            ],
            rows,
        )
    )
    print(f"\n{service.stats().summary()}")
    return 0


def _cmd_motivate(args: argparse.Namespace) -> int:
    platform = hikey970()
    simulator = BoardSimulator(platform)
    mix = Workload.from_names(["alexnet", "mobilenet", "vgg19", "squeezenet"])
    # Continuous benchmark loop (paper Section II): demand unbounded.
    unbounded = [1e9] * mix.num_dnns
    baseline = simulator.simulate(
        mix.models,
        Mapping.single_device(mix.models, GPU_ID),
        offered_rates=unbounded,
    ).average_throughput
    rng = np.random.default_rng(args.seed)
    normalized = []
    for _ in range(args.setups):
        mapping = random_two_stage_mapping(mix.models, rng, (GPU_ID, BIG_CPU_ID))
        measured = simulator.measure(
            mix.models, mapping, rng=rng, offered_rates=unbounded
        )
        normalized.append(measured.average_throughput / baseline)
    values = np.array(normalized)
    print(
        f"{args.setups} random set-ups vs GPU-only baseline: "
        f"best {values.max():.2f}, median {np.median(values):.2f}, "
        f"worst {values.min():.2f}"
    )
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    mix = Workload.from_names(args.mix)
    total_layers = mix.total_layers
    print(f"mix: {', '.join(mix.model_names)} ({total_layers} layers)")
    print(
        f"paper estimate C({total_layers}, 3) = "
        f"{paper_combination_estimate(total_layers, 3):,}"
    )
    print(
        "exact stage-capped contiguous mappings = "
        f"{total_contiguous_mappings(mix.models, 3, 3):,}"
    )
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from .core import EnergyAwareObjective
    from .hw import hikey970_power

    mix = Workload.from_names(args.mix)
    builder = _make_builder(args)
    service = SchedulingService(builder)
    power_model = hikey970_power()
    energy_objective = EnergyAwareObjective(
        power_model, builder.platform, builder.latency_table
    )
    rows = []
    for label, objective in (
        ("throughput (paper)", None),
        ("inferences/joule", energy_objective),
    ):
        response = service.submit(mix, objective=objective)
        measured = builder.simulator.simulate(mix.models, response.mapping)
        report = power_model.report(builder.platform, measured)
        rows.append(
            [
                label,
                f"{measured.average_throughput:.2f}",
                f"{report.total_w:.2f}",
                f"{report.inferences_per_joule:.3f}",
            ]
        )
    print(format_table(["objective", "T (inf/s)", "power (W)", "inf/J"], rows))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .frontdoor import clear_cache_dir, inspect_cache_dir

    if args.action == "clear":
        removed = clear_cache_dir(args.cache_dir)
        print(f"removed {removed} snapshot file(s) from {args.cache_dir}")
        return 0
    print(json.dumps(inspect_cache_dir(args.cache_dir), indent=2,
                     sort_keys=True))
    return 0


def _add_frontdoor_arguments(parser: argparse.ArgumentParser) -> None:
    """``--window-size``/``--cache-dir``/``--distill`` flag block."""
    group = parser.add_argument_group("front door")
    group.add_argument(
        "--window-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="pool requests through the async front door in windows "
        "of N (1 = identical to the direct batch call; default: "
        "one whole-batch call, no front door)",
    )
    group.add_argument(
        "--cache-dir",
        type=str,
        default="",
        metavar="DIR",
        help="persist the decision cache under DIR and reload it on "
        "the next run (invalidated when the estimator weights move)",
    )
    group.add_argument(
        "--distill",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="prune MCTS candidates with the distilled fast-path "
        "student (--no-distill: every candidate pays the full "
        "estimator)",
    )
    group.add_argument(
        "--frontdoor-report",
        type=str,
        default="",
        metavar="PATH",
        help="write window-size and cache-counter JSON to PATH",
    )


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return number


def _add_slo_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--slo`` flag group (serve-trace / fleet-serve)."""
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="FLOOR",
        help="per-tenant throughput floor (inf/s); switches on "
        "admission control and priority preemption unless "
        "--slo-observe is also given",
    )
    parser.add_argument(
        "--slo-latency-ms",
        type=float,
        default=None,
        metavar="MS",
        help="decision-latency bound (ms) reported in SLO attainment",
    )
    parser.add_argument(
        "--slo-observe",
        action="store_true",
        help="annotate and count SLO attainment without rejecting, "
        "queueing or preempting anything",
    )


def _slo_policy(args: argparse.Namespace):
    """The :class:`~repro.slo.SLOPolicy` the flags describe (or None)."""
    from .core import SLOTarget
    from .slo import SLOPolicy

    if args.slo is None and args.slo_latency_ms is None:
        return None
    target = SLOTarget(
        min_throughput=args.slo,
        max_latency_s=(
            args.slo_latency_ms / 1000.0
            if args.slo_latency_ms is not None
            else None
        ),
    )
    enforce = not args.slo_observe
    return SLOPolicy(target=target, admission=enforce, preemption=enforce)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="OmniBoost reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list the model zoo")
    models.add_argument(
        "--all", action="store_true", help="include extension models"
    )
    models.set_defaults(fn=_cmd_models)

    profile = sub.add_parser("profile", help="kernel-profile the zoo")
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(fn=_cmd_profile)

    train = sub.add_parser("train", help="train and checkpoint the estimator")
    train.add_argument("--samples", type=int, default=500)
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", type=str, default="estimator.npz")
    train.set_defaults(fn=_cmd_train)

    schedule = sub.add_parser("schedule", help="schedule a mix, compare schedulers")
    schedule.add_argument("mix", nargs="+", help=f"models: {', '.join(MODEL_NAMES)}")
    schedule.add_argument("--checkpoint", type=str, default="")
    schedule.add_argument("--samples", type=int, default=300)
    schedule.add_argument("--epochs", type=int, default=25)
    schedule.add_argument("--seed", type=int, default=0)
    schedule.add_argument(
        "--eval-batch-size",
        type=_positive_int,
        default=1,
        help="MCTS rollouts scored per vectorized estimator call "
        "(1 = the paper's sequential semantics)",
    )
    schedule.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="disable the MCTS transposition cache (re-query repeated "
        "rollout leaves)",
    )
    schedule.add_argument(
        "--no-compiled-inference",
        action="store_true",
        help="run estimator queries through the autograd interpreter "
        "instead of the compiled inference plan",
    )
    schedule.add_argument(
        "--scheduler",
        action="append",
        metavar="NAME",
        help="compare only the named registered scheduler(s); repeatable "
        f"(registered: {', '.join(available_schedulers())}); "
        "default: every registered scheduler",
    )
    schedule.set_defaults(fn=_cmd_schedule)

    serve = sub.add_parser(
        "serve-batch",
        help="answer a JSON file of mixes through the scheduling service",
    )
    serve.add_argument(
        "mix_file",
        help="JSON: a list of mixes, each a list of model names or an "
        'object {"models": [...], "budget": N, "priority": N, "id": "..."}',
    )
    serve.add_argument("--checkpoint", type=str, default="")
    serve.add_argument("--samples", type=int, default=300)
    serve.add_argument("--epochs", type=int, default=25)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--eval-batch-size", type=_positive_int, default=1)
    serve.add_argument("--no-eval-cache", action="store_true")
    serve.add_argument("--no-compiled-inference", action="store_true")
    serve.add_argument(
        "--scheduler",
        type=str,
        default="omniboost",
        help="registered scheduler answering the batch",
    )
    serve.add_argument(
        "--measure",
        action="store_true",
        help="also deploy each mapping on the simulated board",
    )
    _add_frontdoor_arguments(serve)
    serve.set_defaults(fn=_cmd_serve_batch)

    trace = sub.add_parser(
        "serve-trace",
        help="replay a churn scenario through the online scheduler",
    )
    trace.add_argument(
        "scenario",
        nargs="?",
        default="bursty",
        help="churn scenario name (bursty, diurnal, priority-inversion, "
        "steady-drain, priority-storm, slo-squeeze, estimator-brownout); "
        "ignored when --trace-file is given",
    )
    trace.add_argument(
        "--trace-file",
        type=str,
        default="",
        help="replay a trace JSON file (ArrivalTrace.to_json format) "
        "instead of a named scenario",
    )
    trace.add_argument(
        "--events",
        type=_positive_int,
        default=None,
        help="truncate the trace to its first N events",
    )
    trace.add_argument("--trace-seed", type=int, default=0)
    trace.add_argument("--checkpoint", type=str, default="")
    trace.add_argument("--samples", type=int, default=300)
    trace.add_argument("--epochs", type=int, default=25)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--eval-batch-size", type=_positive_int, default=1)
    trace.add_argument("--no-eval-cache", action="store_true")
    trace.add_argument("--no-compiled-inference", action="store_true")
    trace.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="MCTS iteration budget per re-search (default: paper's 500)",
    )
    trace.add_argument(
        "--warm-patience",
        type=_positive_int,
        default=120,
        help="stop a warm re-search after N non-improving iterations",
    )
    trace.add_argument(
        "--min-overlap",
        type=float,
        default=0.5,
        help="retained-row coverage below which a cold search runs",
    )
    trace.add_argument(
        "--no-warm",
        action="store_true",
        help="disable warm starts (cold full search on every event)",
    )
    trace.add_argument(
        "--report",
        type=str,
        default="",
        help="write the TimelineReport JSON to this path",
    )
    _add_slo_arguments(trace)
    _add_resilience_arguments(trace)
    trace.set_defaults(fn=_cmd_serve_trace)

    fleet = sub.add_parser(
        "fleet-serve",
        help="serve a burst (or replay a churn trace) across a board fleet",
    )
    fleet.add_argument(
        "mix_file",
        nargs="?",
        default="",
        help="optional JSON mix file (serve-batch format); defaults to "
        "the named --scenario's request burst",
    )
    fleet.add_argument(
        "--scenario",
        type=str,
        default="request-burst",
        help="fleet scenario supplying the burst (request-burst, "
        "fleet-churn, heavy-split, priority-storm, slo-squeeze, "
        "board-failure, flash-crowd) or, with --trace, the churn trace",
    )
    fleet.add_argument(
        "--boards",
        nargs="+",
        default=["hikey970", "hikey970_with_npu", "cpu_only_board"],
        metavar="PRESET",
        help="board platform presets, one per board (named edge0..edgeN); "
        "presets: hikey970, hikey970_with_npu, cpu_only_board, "
        "symmetric_board, cloud_tier",
    )
    fleet.add_argument(
        "--placement",
        type=str,
        default="estimator",
        choices=["estimator", "greedy-load"],
        help="placement policy: estimator-scored candidates (default) "
        "or pure greedy-load",
    )
    fleet.add_argument(
        "--trace",
        action="store_true",
        help="replay the scenario's churn trace against the fleet "
        "instead of serving its burst",
    )
    fleet.add_argument("--events", type=_positive_int, default=None)
    fleet.add_argument("--trace-seed", type=int, default=0)
    fleet.add_argument("--warm-patience", type=_positive_int, default=60)
    fleet.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="BOARD@TIME",
        help="with --trace: kill the named board when the replay "
        "reaches the timestamp (repeatable); its orphaned tenants "
        "recover onto the survivors by warm re-search",
    )
    fleet.add_argument(
        "--elastic",
        action="store_true",
        help="with --trace: attach the policy-driven autoscaler "
        "(scale-out under queue/attainment pressure, drain-and-retire "
        "back to baseline when load recedes)",
    )
    fleet.add_argument(
        "--elastic-preset",
        type=str,
        default="cloud_tier",
        metavar="PRESET",
        help="board preset scale-outs provision from (default: "
        "cloud_tier, the network-taxed onload tier)",
    )
    fleet.add_argument(
        "--elastic-max-boards",
        type=_positive_int,
        default=4,
        metavar="N",
        help="fleet-size ceiling for scale-out (default: 4)",
    )
    fleet.add_argument(
        "--report",
        type=str,
        default="",
        help="write the aggregated fleet TimelineReport JSON here "
        "(with --trace)",
    )
    fleet.add_argument("--samples", type=int, default=150)
    fleet.add_argument("--epochs", type=int, default=10)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--budget", type=_positive_int, default=None)
    fleet.add_argument(
        "--scheduler",
        type=str,
        default="omniboost",
        help="registered scheduler answering on every board",
    )
    _add_frontdoor_arguments(fleet)
    _add_slo_arguments(fleet)
    _add_resilience_arguments(fleet)
    fleet.set_defaults(fn=_cmd_fleet_serve)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear a persistent decision-cache directory",
    )
    cache.add_argument("action", choices=["inspect", "clear"])
    cache.add_argument(
        "cache_dir", help="directory previously passed as --cache-dir"
    )
    cache.set_defaults(fn=_cmd_cache)

    lint = sub.add_parser(
        "lint",
        help="doctrine static analysis (determinism, batch invariance, "
        "count-based gates) over the repo's own source",
    )
    lint_arg_parser(lint)
    lint.set_defaults(fn=lint_run_from_args)

    motivate = sub.add_parser("motivate", help="run the Fig.-1 sweep")
    motivate.add_argument("--setups", type=int, default=200)
    motivate.add_argument("--seed", type=int, default=0)
    motivate.set_defaults(fn=_cmd_motivate)

    space = sub.add_parser("space", help="design-space size of a mix")
    space.add_argument("mix", nargs="+")
    space.set_defaults(fn=_cmd_space)

    power = sub.add_parser(
        "power", help="throughput-vs-power objectives on one mix"
    )
    power.add_argument("mix", nargs="+")
    power.add_argument("--samples", type=int, default=300)
    power.add_argument("--epochs", type=int, default=25)
    power.add_argument("--seed", type=int, default=0)
    power.add_argument("--eval-batch-size", type=_positive_int, default=1)
    power.add_argument("--no-eval-cache", action="store_true")
    power.add_argument("--no-compiled-inference", action="store_true")
    power.set_defaults(fn=_cmd_power)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
