"""Steady-state contention model: processor-sharing rate allocation.

With several DNN pipelines running concurrently, each device serves the
stage work of every DNN mapped onto it, and the shared DRAM controller
serves everyone's memory traffic.  In steady state each DNN ``i``
completes inferences at some rate ``r_i`` (inferences/second) subject
to:

* **demand bound** -- ``r_i <= cap_i``: a pipeline cannot outrun its
  slowest stage, nor the rate at which its application offers frames;
* **device capacity** -- ``sum_i r_i * w[i, d] <= 1`` for every device
  ``d``, where ``w[i, d]`` is the occupancy (seconds of service per
  inference) DNN ``i`` places on device ``d``;
* **memory capacity** -- ``sum_i r_i * m[i] <= 1`` where ``m[i]`` is
  the DNN's DRAM-controller occupancy per inference.

The board's schedulers round-robin *time*, not completed inferences:
when ``k`` networks saturate one device, each gets ~``1/k`` of the
device, so a light network completes proportionally more inferences
than a heavy one.  We therefore allocate by *weighted* progressive
filling with weights ``1 / total_work_i``: every active DNN's share of
occupied time grows at the same speed, and a DNN freezes when it hits
its demand bound or any resource it uses saturates.  On a single
shared device this reduces exactly to classic egalitarian processor
sharing (``r_i = 1 / (k * w_i)``), and with per-DNN private devices it
recovers full isolated throughput.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["processor_sharing_rates", "max_min_rates"]

_EPS = 1e-12


def processor_sharing_rates(
    work: np.ndarray,
    rate_caps: np.ndarray,
    memory_work: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Steady-state rates under time-fair processor sharing.

    Parameters
    ----------
    work:
        ``(M, D)`` array; ``work[i, d]`` is seconds of device-``d``
        occupancy one inference of DNN ``i`` requires.  Must be
        non-negative with a positive row sum for every DNN.
    rate_caps:
        ``(M,)`` array of per-DNN rate bounds (pipeline bottleneck and
        offered load combined).  Must be positive.
    memory_work:
        Optional ``(M,)`` array of shared memory-controller occupancy
        per inference; treated as one extra capacity-1 resource.
    weights:
        Optional ``(M,)`` positive fair-share weights (rates grow as
        ``r_i = theta * weights[i]`` while active).  Default: the
        reciprocal of each DNN's total occupancy *as passed in*.  The
        board simulator instead passes weights derived from the
        *uninflated* occupancies, so a DNN's fair share is intrinsic
        to its pipeline and cannot be redistributed by contention
        inflation (see :class:`~repro.sim.simulator.BoardSimulator`).

    Returns
    -------
    ``(M,)`` array of rates at the weighted max-min fair point.
    """
    work = np.asarray(work, dtype=float)
    rate_caps = np.asarray(rate_caps, dtype=float)
    if work.ndim != 2:
        raise ValueError(f"work must be 2-D (M, D), got shape {work.shape}")
    num_dnns = work.shape[0]
    if rate_caps.shape != (num_dnns,):
        raise ValueError(
            f"rate_caps shape {rate_caps.shape} does not match {num_dnns} DNNs"
        )
    if (work < 0).any():
        raise ValueError("work entries must be non-negative")
    if (rate_caps <= 0).any():
        raise ValueError("rate caps must be positive")
    total_work = work.sum(axis=1)
    if memory_work is not None:
        memory_work = np.asarray(memory_work, dtype=float)
        if memory_work.shape != (num_dnns,):
            raise ValueError(
                f"memory_work shape {memory_work.shape} does not match {num_dnns} DNNs"
            )
        if (memory_work < 0).any():
            raise ValueError("memory_work entries must be non-negative")
        work = np.hstack([work, memory_work[:, None]])
        total_work = total_work + memory_work
    if (total_work <= 0).any():
        raise ValueError("every DNN must place positive work somewhere")

    # Rates grow as r_i = theta * weight_i while active; equal growth of
    # theta is equal growth of every DNN's occupied-time share.  The
    # floor guards against subnormal work values (no physical kernel is
    # faster than a picosecond) that would overflow the reciprocal.
    if weights is None:
        weights = 1.0 / np.maximum(total_work, 1e-12)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (num_dnns,):
            raise ValueError(
                f"weights shape {weights.shape} does not match {num_dnns} DNNs"
            )
        if (weights <= 0).any():
            raise ValueError("weights must be positive")
    rates = np.zeros(num_dnns)
    active = np.ones(num_dnns, dtype=bool)
    # Each round freezes at least one DNN, so M rounds suffice.
    for _ in range(num_dnns):
        if not active.any():
            break
        usage = rates @ work  # current occupancy of each resource
        active_demand = (weights * active) @ work
        # How far theta can grow before a resource saturates (resources
        # no active DNN uses impose no limit).
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            resource_headroom = np.where(
                active_demand > _EPS, (1.0 - usage) / active_demand, np.inf
            )
        cap_headroom = np.where(active, (rate_caps - rates) / weights, np.inf)
        growth = min(resource_headroom.min(), cap_headroom.min())
        growth = max(growth, 0.0)
        rates[active] += growth * weights[active]
        # Freeze DNNs that hit their cap or touch a saturated resource.
        usage = rates @ work
        saturated = usage >= 1.0 - 1e-9
        hit_cap = rates >= rate_caps - 1e-9 * rate_caps
        touches_saturated = (work[:, saturated] > _EPS).any(axis=1)
        newly_frozen = active & (hit_cap | touches_saturated)
        if not newly_frozen.any():
            # Numerical guard: force-freeze the most constrained DNN so
            # the loop always terminates.
            candidates = np.flatnonzero(active)
            newly_frozen = np.zeros_like(active)
            newly_frozen[candidates[0]] = True
        active &= ~newly_frozen
    return rates


#: Backwards-compatible alias; the solver has always been the fair-share
#: allocator described above.
max_min_rates = processor_sharing_rates
