"""The board simulator -- this reproduction's stand-in for the HiKey970.

:class:`BoardSimulator` turns ``(mix, mapping)`` pairs into steady-state
throughput numbers.  Four effects beyond the per-kernel roofline make
multi-DNN scheduling interesting, and each is modeled explicitly:

* **Per-device concurrency overhead.**  A device time-slicing ``k``
  different networks pays context/queue/cache overhead; service times
  scale by ``1 + beta_kind * (k - 1)``.
* **Working-set thrash.**  Each device has a comfortable resident
  working-set capacity (for the GPU: the OpenCL buffer pool the ACL
  runtime manages well).  When the weights mapped onto a device
  overflow it, service times inflate -- the driver starts shuffling
  buffers.  This is what makes "map four large DNNs on the GPU"
  collapse (the paper's x4.6 headline gap at 4-DNN mixes).  The
  inflation is *capped* per device kind: once the working set has
  fully overflowed, every inference simply re-streams its weights
  from DRAM, which bounds the slowdown -- an uncapped linear model
  would let heavy mixes degrade without limit, which no real driver
  stack does.
* **Unified-RAM squeeze.**  The board's computing components share one
  LPDDR pool: every resident network's weights occupy it *no matter
  where its layers are mapped*.  When the mix's total footprint
  overflows the comfortable RAM budget, each device's effective
  working-set capacity shrinks proportionally -- on heavy five-network
  mixes even a scheduler that maps almost nothing to the GPU cannot
  spare its buffer pool, so *every* mapping pays thrash and the
  baseline-vs-distributed gap collapses (the paper's Fig. 5c
  saturation).
* **Per-kind residency pressure.**  Co-resident DNNs congest the
  shared LPDDR controller and the kernel's memory-reclaim machinery.
  Latency-tolerant GPU cores ride it out; the in-order LITTLE cluster
  stalls badly.  Service times scale by ``1 + p_kind * max(0, M -
  comfortable_residency)**2`` -- *quadratic* in the excess, because
  each DNN beyond comfortable both adds its own traffic and shrinks
  the page cache everyone else runs in.  This is why 5-DNN mixes
  compress every scheduler's gains: the CPU clusters that spreading
  relies on degrade the most, exactly when the thrash cap keeps the
  GPU-only baseline from collapsing further.  Past ``max_residency``
  the simulator raises :class:`BoardUnresponsiveError` (the paper's
  6-DNN experience).
* **DRAM-controller contention.**  Each DNN's per-inference DRAM
  traffic occupies the shared controller, one extra resource in the
  max-min solver.

``simulate`` is the noise-free oracle; ``measure`` adds multiplicative
measurement noise and is what profiling and "deployment" use, so no
component ever trains on the oracle directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..hw.device import DeviceKind
from ..hw.kernels import KernelCostModel
from ..hw.platform_ import Platform
from ..models.graph import ModelGraph
from .contention import processor_sharing_rates
from .mapping import Mapping
from .pipeline import PipelinePlan, compile_pipelines

__all__ = ["SimConfig", "SimulationResult", "BoardSimulator", "BoardUnresponsiveError"]


class BoardUnresponsiveError(RuntimeError):
    """Raised when a mix exceeds the board's residency capability.

    Mirrors the paper's observation that six concurrent DNNs made the
    HiKey970 unresponsive: past this point there is no throughput to
    report, only a hung board.
    """


@dataclass(frozen=True)
class SimConfig:
    """Tunable second-order effects of the board model.

    All dictionaries are keyed by device *kind*
    (:class:`~repro.hw.device.DeviceKind`).

    Parameters
    ----------
    concurrency_overhead:
        Fractional service-time inflation per additional distinct DNN
        sharing a device.
    workingset_capacity_bytes:
        Resident weight bytes a device serves without buffer thrash.
        The GPU's OpenCL buffer pool is the scarce one; the CPU
        clusters page against the board's comparatively large RAM.
    thrash_slope:
        Service-time inflation per fractional working-set overflow
        (``1 + slope * overflow_ratio``, saturating at ``thrash_cap``).
    thrash_cap:
        Upper bound of the thrash multiplier per device kind: the
        fully-overflowed regime just re-streams weights every
        inference, so the slowdown saturates.
    ram_comfortable_bytes:
        Total mix footprint (weights + activations of every resident
        DNN) the unified RAM absorbs without squeezing anybody.
    ram_squeeze:
        How fast effective per-device working-set capacities shrink
        per fractional overflow of the comfortable RAM budget.
    min_capacity_fraction:
        Floor of the squeeze: even a hopelessly oversubscribed RAM
        leaves each device this fraction of its nominal capacity.
    ram_thrash_slope:
        Global thrash floor on accelerator kinds (GPU/NPU): past the
        comfortable RAM budget the kernel's page reclaim evicts driver
        buffer pages *board-wide*, so an accelerator re-streams part of
        its working set every inference no matter how little is mapped
        to it -- ``thrash >= 1 + ram_thrash_slope * ram_overflow``.
    residency_thrash_floor:
        Count-driven part of the same reclaim floor:
        ``thrash >= 1 + coeff * max(0, excess_residency**2 - 1)`` on
        accelerator kinds -- one DNN beyond comfortable is absorbed,
        two (the five-network regime) defeat the driver's buffer pool
        regardless of how *little* is mapped to the accelerator (the
        board is one step from its 6-DNN hang).  Together the two floors are what makes
        heavy five-network mixes impossible to game by parking only
        light networks on the GPU (paper Fig. 5c: nobody beats the
        baseline by much at five DNNs).
    residency_pressure:
        Per-kind service-time inflation coefficient on the *squared*
        excess residency (``1 + p * excess**2``); at one DNN beyond
        comfortable this equals the old linear model, at two it bites
        four times as hard.
    dram_traffic_fraction:
        Fraction of nominal kernel byte traffic reaching the DRAM
        controller (the rest is absorbed by caches/tiling).
    offered_rate:
        Default per-DNN offered load in inferences/second -- how fast
        the application feeds frames (think camera FPS).  Light mixes
        finish below board capacity, so all schedulers tie on them,
        exactly the paper's 3-DNN "mix-5" observation.  Override per
        mix via ``simulate(..., offered_rates=...)``.
    measurement_noise:
        Relative sigma of multiplicative noise applied by ``measure``.
    """

    concurrency_overhead: Dict[str, float] = field(
        default_factory=lambda: {
            DeviceKind.GPU: 0.14,
            DeviceKind.BIG_CPU: 0.12,
            DeviceKind.LITTLE_CPU: 0.12,
            DeviceKind.NPU: 0.15,
        }
    )
    workingset_capacity_bytes: Dict[str, float] = field(
        default_factory=lambda: {
            DeviceKind.GPU: 0.82e9,
            DeviceKind.BIG_CPU: 1.5e9,
            DeviceKind.LITTLE_CPU: 1.2e9,
            DeviceKind.NPU: 0.5e9,
        }
    )
    thrash_slope: Dict[str, float] = field(
        default_factory=lambda: {
            DeviceKind.GPU: 4.0,
            DeviceKind.BIG_CPU: 2.0,
            DeviceKind.LITTLE_CPU: 1.5,
            DeviceKind.NPU: 4.0,
        }
    )
    thrash_cap: Dict[str, float] = field(
        default_factory=lambda: {
            DeviceKind.GPU: 2.4,
            DeviceKind.BIG_CPU: 3.0,
            DeviceKind.LITTLE_CPU: 3.0,
            DeviceKind.NPU: 2.4,
        }
    )
    residency_pressure: Dict[str, float] = field(
        default_factory=lambda: {
            DeviceKind.GPU: 0.0,
            DeviceKind.BIG_CPU: 0.80,
            DeviceKind.LITTLE_CPU: 1.20,
            DeviceKind.NPU: 0.0,
        }
    )
    default_concurrency_overhead: float = 0.15
    default_workingset_capacity_bytes: float = 1.5e9
    default_thrash_slope: float = 2.0
    default_thrash_cap: float = 3.0
    default_residency_pressure: float = 0.25
    ram_comfortable_bytes: float = 0.85e9
    ram_squeeze: float = 1.0
    min_capacity_fraction: float = 0.35
    ram_thrash_slope: float = 2.0
    residency_thrash_floor: float = 0.47
    dram_traffic_fraction: float = 0.35
    offered_rate: float = 1.8
    measurement_noise: float = 0.02

    def overhead_for(self, kind: str) -> float:
        return self.concurrency_overhead.get(kind, self.default_concurrency_overhead)

    def capacity_for(self, kind: str) -> float:
        return self.workingset_capacity_bytes.get(
            kind, self.default_workingset_capacity_bytes
        )

    def thrash_slope_for(self, kind: str) -> float:
        return self.thrash_slope.get(kind, self.default_thrash_slope)

    def thrash_cap_for(self, kind: str) -> float:
        return self.thrash_cap.get(kind, self.default_thrash_cap)

    def pressure_for(self, kind: str) -> float:
        return self.residency_pressure.get(kind, self.default_residency_pressure)


@dataclass(frozen=True)
class SimulationResult:
    """Steady-state outcome of running a mix under a mapping.

    Attributes
    ----------
    rates:
        Per-DNN inferences/second, mix order.
    device_throughput:
        Per-device share of the aggregate rate: DNN rates attributed to
        devices proportionally to where their work executes.  Sums to
        ``rates.sum()``; this is the 3-vector the paper's estimator
        predicts (Fig. 3, step 4).
    device_utilization:
        Fraction of each device's capacity in use (<= 1).
    device_scale:
        The composite service-time inflation (concurrency x thrash x
        pressure) each device ran under; 1.0 = unimpeded.
    memory_utilization:
        Fraction of the DRAM controller's capacity in use (<= 1).
    plans:
        The priced pipelines (one per DNN).
    """

    rates: np.ndarray
    device_throughput: np.ndarray
    device_utilization: np.ndarray
    device_scale: np.ndarray
    memory_utilization: float
    plans: Tuple[PipelinePlan, ...]

    @property
    def average_throughput(self) -> float:
        """The paper's metric ``T``: mean inferences/second over the mix."""
        return float(self.rates.mean())

    @property
    def total_throughput(self) -> float:
        """Aggregate inferences/second across the mix."""
        return float(self.rates.sum())


class BoardSimulator:
    """Analytical HiKey970: maps (mix, mapping) to steady-state rates."""

    def __init__(
        self,
        platform: Platform,
        cost_model: Optional[KernelCostModel] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.platform = platform
        self.cost_model = cost_model or KernelCostModel()
        self.config = config or SimConfig()

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def layer_latency(
        self, model: ModelGraph, layer_index: int, device_id: int
    ) -> float:
        """Standalone latency of one layer on one device (paper Eq. 1)."""
        device = self.platform.device(device_id)
        layer = model.layers[layer_index]
        return sum(self.cost_model.latency(kernel, device) for kernel in layer.kernels)

    def plan(
        self, models: Sequence[ModelGraph], mapping: Mapping
    ) -> Tuple[PipelinePlan, ...]:
        """Price every DNN's pipeline without contention effects."""
        return tuple(
            compile_pipelines(models, mapping, self.platform, self.cost_model)
        )

    # ------------------------------------------------------------------
    # Steady-state simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        models: Sequence[ModelGraph],
        mapping: Mapping,
        offered_rates: Optional[Sequence[float]] = None,
    ) -> SimulationResult:
        """Noise-free steady-state throughput of the mix under ``mapping``.

        ``offered_rates`` bounds each DNN's demand in inferences/second
        (default: the config's uniform ``offered_rate``).
        """
        num_dnns = len(models)
        if num_dnns == 0:
            raise ValueError("cannot simulate an empty mix")
        memory = self.platform.memory
        if num_dnns > memory.max_residency:
            raise BoardUnresponsiveError(
                f"{num_dnns} concurrent DNNs exceed the board's capability "
                f"(max residency {memory.max_residency}); the board hangs"
            )
        plans = self.plan(models, mapping)
        num_devices = self.platform.num_devices

        # Occupancy matrix before contention scaling.
        work = np.zeros((num_dnns, num_devices))
        for dnn_index, plan in enumerate(plans):
            for device_id in range(num_devices):
                work[dnn_index, device_id] = plan.work_on_device(device_id)
        intrinsic_work = work.sum(axis=1)

        scale = self._device_scales(models, mapping, work, num_dnns)
        work = work * scale[None, :]

        # Per-DNN demand bound: pipeline bottleneck (with the same
        # inflation applied per stage) and offered load.
        if offered_rates is None:
            offered = np.full(num_dnns, self.config.offered_rate)
        else:
            offered = np.asarray(list(offered_rates), dtype=float)
            if offered.shape != (num_dnns,):
                raise ValueError(
                    f"offered_rates must provide one rate per DNN "
                    f"({num_dnns}), got shape {offered.shape}"
                )
            if (offered <= 0).any():
                raise ValueError("offered rates must be positive")
        rate_caps = np.empty(num_dnns)
        for dnn_index, plan in enumerate(plans):
            slowest = max(
                stage.service_time * scale[stage.device_id] for stage in plan.stages
            )
            rate_caps[dnn_index] = min(1.0 / slowest, offered[dnn_index])

        # Shared DRAM controller occupancy per inference.
        memory_work = np.zeros(num_dnns)
        controller_bw = memory.total_bandwidth_gbs * 1e9
        for dnn_index, model in enumerate(models):
            dram_bytes = model_dram_bytes(model, self.config.dram_traffic_fraction)
            memory_work[dnn_index] = dram_bytes / controller_bw

        # Fair-share weights come from the *uninflated* occupancies:
        # contention inflation (thrash, residency pressure) stretches a
        # DNN's service times but must not shrink its round-robin time
        # share on the devices it occupies.  Deriving weights from the
        # inflated matrix did exactly that — an added co-resident DNN
        # that thrashed one incumbent's GPU stages lowered that
        # incumbent's weight board-wide, handing its share of a
        # saturated CPU cluster to another incumbent, whose rate then
        # *rose* with added load (non-monotone; see
        # tests/test_property_invariants.py::TestContentionMonotonicity).
        weights = 1.0 / np.maximum(intrinsic_work + memory_work, 1e-12)
        rates = processor_sharing_rates(
            work, rate_caps, memory_work, weights=weights
        )

        device_utilization = rates @ work
        memory_utilization = float(rates @ memory_work)
        device_throughput = _attribute_rates(rates, work)
        return SimulationResult(
            rates=rates,
            device_throughput=device_throughput,
            device_utilization=device_utilization,
            device_scale=scale,
            memory_utilization=memory_utilization,
            plans=plans,
        )

    def measure(
        self,
        models: Sequence[ModelGraph],
        mapping: Mapping,
        rng: Optional[np.random.Generator] = None,
        offered_rates: Optional[Sequence[float]] = None,
    ) -> SimulationResult:
        """Like ``simulate`` but with multiplicative measurement noise.

        This is the only interface profiling and evaluation are allowed
        to use; the noise-free oracle exists for tests and ablations.
        """
        result = self.simulate(models, mapping, offered_rates=offered_rates)
        if rng is None:
            return result
        sigma = self.config.measurement_noise
        noise = rng.normal(1.0, sigma, size=result.rates.shape).clip(0.5, 1.5)
        throughput_noise = rng.normal(
            1.0, sigma, size=result.device_throughput.shape
        ).clip(0.5, 1.5)
        return SimulationResult(
            rates=result.rates * noise,
            device_throughput=result.device_throughput * throughput_noise,
            device_utilization=result.device_utilization,
            device_scale=result.device_scale,
            memory_utilization=result.memory_utilization,
            plans=result.plans,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _device_scales(
        self,
        models: Sequence[ModelGraph],
        mapping: Mapping,
        work: np.ndarray,
        num_dnns: int,
    ) -> np.ndarray:
        """Composite service-time inflation per device.

        Combines concurrency overhead, working-set thrash and residency
        pressure (see module docstring).
        """
        num_devices = self.platform.num_devices
        sharers = (work > 0).sum(axis=0)
        resident_bytes = np.zeros(num_devices)
        for dnn_index, model in enumerate(models):
            row = mapping.assignments[dnn_index]
            for layer, device_id in zip(model.layers, row):
                resident_bytes[device_id] += layer.weight_bytes + layer.output_bytes
        excess_residency = max(
            0, num_dnns - self.platform.memory.comfortable_residency
        )
        # Unified-RAM squeeze: the whole mix's footprint is resident in
        # the shared LPDDR pool regardless of the mapping, shrinking
        # every device's effective buffer-pool capacity.
        total_resident = float(resident_bytes.sum())
        ram_overflow = max(
            0.0, total_resident / self.config.ram_comfortable_bytes - 1.0
        )
        squeeze = max(
            self.config.min_capacity_fraction,
            1.0 - self.config.ram_squeeze * ram_overflow,
        )
        scale = np.ones(num_devices)
        for device_id in range(num_devices):
            kind = self.platform.device(device_id).kind
            concurrency = 1.0
            if sharers[device_id] > 1:
                concurrency += self.config.overhead_for(kind) * (
                    sharers[device_id] - 1
                )
            capacity = self.config.capacity_for(kind) * squeeze
            overflow = max(0.0, resident_bytes[device_id] / capacity - 1.0)
            thrash = 1.0 + self.config.thrash_slope_for(kind) * overflow
            if kind in (DeviceKind.GPU, DeviceKind.NPU):
                # Board-wide reclaim floor: accelerator buffer pools are
                # evicted by global RAM pressure no matter the mapping.
                thrash = max(
                    thrash,
                    1.0 + self.config.ram_thrash_slope * ram_overflow,
                    1.0
                    + self.config.residency_thrash_floor
                    * max(0, excess_residency**2 - 1),
                )
            thrash = min(thrash, self.config.thrash_cap_for(kind))
            pressure = 1.0 + self.config.pressure_for(kind) * excess_residency**2
            scale[device_id] = concurrency * thrash * pressure
        return scale


def model_dram_bytes(model: ModelGraph, traffic_fraction: float) -> float:
    """Per-inference DRAM traffic of a model (cache-filtered bytes)."""
    return traffic_fraction * sum(
        kernel.bytes_moved for layer in model.layers for kernel in layer.kernels
    )


def _attribute_rates(rates: np.ndarray, work: np.ndarray) -> np.ndarray:
    """Split each DNN's rate across devices proportionally to its work.

    The result is the per-component throughput vector of paper Fig. 3:
    it sums to the aggregate mix rate and shows where inference
    progress physically happens.
    """
    num_devices = work.shape[1]
    totals = work.sum(axis=1, keepdims=True)
    # A DNN with zero total work cannot happen (every layer costs time),
    # but guard the division anyway.
    shares = np.divide(
        work, totals, out=np.full_like(work, 1.0 / num_devices), where=totals > 0
    )
    return rates @ shares
