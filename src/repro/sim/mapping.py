"""Mappings: the scheduler's output format.

A :class:`Mapping` assigns every layer of every DNN in a mix to one
computing component.  Contiguous runs of layers on the same device form
*pipeline stages*; the number of stages is the quantity OmniBoost's
losing-state rule caps at the platform's device count.

Mappings are value objects: hashable, comparable and immutable, so they
can key caches and deduplicate MCTS tree nodes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..models.graph import ModelGraph

__all__ = ["Mapping", "Stage"]


class Stage(Tuple[int, int, int]):
    """A contiguous run of layers on one device.

    A named-tuple-light over ``(device_id, start, end)`` where ``start``
    is inclusive and ``end`` exclusive, matching Python slicing.
    """

    __slots__ = ()

    def __new__(cls, device_id: int, start: int, end: int) -> "Stage":
        if start < 0 or end <= start:
            raise ValueError(f"invalid stage bounds [{start}, {end})")
        return super().__new__(cls, (device_id, start, end))

    @property
    def device_id(self) -> int:
        return self[0]

    @property
    def start(self) -> int:
        return self[1]

    @property
    def end(self) -> int:
        return self[2]

    @property
    def num_layers(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stage(dev={self.device_id}, layers=[{self.start}:{self.end}))"


class Mapping:
    """Per-layer device assignments for every DNN in a mix.

    Parameters
    ----------
    assignments:
        One tuple of device ids per DNN, aligned with the mix order;
        ``assignments[i][j]`` is the device of layer ``j`` of DNN ``i``.
    """

    def __init__(self, assignments: Sequence[Sequence[int]]) -> None:
        if not assignments:
            raise ValueError("a mapping must cover at least one DNN")
        self.assignments: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(d) for d in row) for row in assignments
        )
        for index, row in enumerate(self.assignments):
            if not row:
                raise ValueError(f"DNN #{index} has an empty assignment")
            if any(device < 0 for device in row):
                raise ValueError(f"DNN #{index} assigns a negative device id")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_device(
        cls, models: Sequence[ModelGraph], device_id: int
    ) -> "Mapping":
        """Map every layer of every DNN to one device (the GPU baseline)."""
        return cls([[device_id] * model.num_layers for model in models])

    @classmethod
    def from_split_points(
        cls,
        models: Sequence[ModelGraph],
        splits: Sequence[Sequence[Tuple[int, int]]],
    ) -> "Mapping":
        """Build a mapping from per-DNN ``(device, run_length)`` segments.

        ``splits[i]`` lists segments in layer order; run lengths must
        sum to the DNN's layer count.  This is the natural encoding for
        the paper's motivational set-ups ("first 4 layers on GPU, the
        remaining on big CPU").
        """
        rows: List[List[int]] = []
        for model, segments in zip(models, splits):
            row: List[int] = []
            for device_id, run_length in segments:
                if run_length <= 0:
                    raise ValueError(
                        f"model {model.name!r}: segment run lengths must be positive"
                    )
                row.extend([device_id] * run_length)
            if len(row) != model.num_layers:
                raise ValueError(
                    f"model {model.name!r}: segments cover {len(row)} layers, "
                    f"model has {model.num_layers}"
                )
            rows.append(row)
        if len(rows) != len(models):
            raise ValueError("splits must provide one segment list per model")
        return cls(rows)

    # ------------------------------------------------------------------
    # Validation & structure
    # ------------------------------------------------------------------
    def validate(self, models: Sequence[ModelGraph], num_devices: int) -> None:
        """Raise ``ValueError`` unless this mapping fits ``models`` exactly."""
        if len(self.assignments) != len(models):
            raise ValueError(
                f"mapping covers {len(self.assignments)} DNNs, mix has {len(models)}"
            )
        for model, row in zip(models, self.assignments):
            if len(row) != model.num_layers:
                raise ValueError(
                    f"model {model.name!r} has {model.num_layers} layers, "
                    f"mapping assigns {len(row)}"
                )
            bad = [device for device in row if device >= num_devices]
            if bad:
                raise ValueError(
                    f"model {model.name!r}: device ids {sorted(set(bad))} out of "
                    f"range for a {num_devices}-device platform"
                )

    def stages(self, dnn_index: int) -> List[Stage]:
        """Pipeline stages (contiguous same-device runs) of one DNN."""
        row = self.assignments[dnn_index]
        stages: List[Stage] = []
        start = 0
        for position in range(1, len(row) + 1):
            if position == len(row) or row[position] != row[start]:
                stages.append(Stage(row[start], start, position))
                start = position
        return stages

    def num_stages(self, dnn_index: int) -> int:
        """Number of pipeline stages of one DNN."""
        row = self.assignments[dnn_index]
        return 1 + sum(1 for a, b in zip(row, row[1:]) if a != b)

    @property
    def max_stages(self) -> int:
        """Largest stage count across the mix (the losing-state metric)."""
        return max(self.num_stages(i) for i in range(len(self.assignments)))

    @property
    def num_dnns(self) -> int:
        return len(self.assignments)

    def devices_used(self) -> Tuple[int, ...]:
        """Sorted ids of devices that receive at least one layer."""
        used = {device for row in self.assignments for device in row}
        return tuple(sorted(used))

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.assignments == other.assignments

    def __hash__(self) -> int:
        return hash(self.assignments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = "; ".join(
            "".join(str(device) for device in row) for row in self.assignments
        )
        return f"Mapping({summary})"
