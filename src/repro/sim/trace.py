"""Discrete-event trace simulation of pipelined multi-DNN execution.

The steady-state model in :mod:`repro.sim.simulator` answers "what
rates does this mapping sustain?" analytically.  This module answers
the same question *constructively*: frames arrive for every DNN at its
offered rate, flow through their pipeline stages, queue at devices that
serve one stage-task at a time, and complete.  It exists for three
reasons:

* **Validation** -- the trace completions must converge to the fluid
  model's rates (a strong cross-check on the contention solver; see
  ``tests/test_sim_trace.py``);
* **Timelines** -- examples can print Gantt-style device schedules,
  which is how one actually debugs a pipeline mapping;
* **Latency** -- the fluid model has no notion of per-frame latency;
  the trace measures it.

Devices dispatch by *least attained service*: when a device frees up,
it serves the ready task of whichever network has consumed the least of
that device so far -- the task-granular analogue of the time-fair
processor sharing the fluid model assumes (and of the preemptive fair
scheduling a Linux board actually performs).  Service times reuse the
exact same composite inflation (concurrency, thrash, residency
pressure) the steady-state model applies, so the two views share one
notion of physics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hw.kernels import KernelCostModel
from ..hw.platform_ import Platform
from ..models.graph import ModelGraph
from .mapping import Mapping
from .simulator import BoardSimulator, SimConfig

__all__ = ["TraceEvent", "TraceResult", "TraceSimulator"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed stage-task on a device."""

    device_id: int
    dnn_index: int
    frame_index: int
    stage_index: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TraceResult:
    """Outcome of a trace run.

    ``rates`` counts only frames completed inside the measurement
    window (after the warm-up fraction), divided by the window length.
    """

    duration_s: float
    warmup_s: float
    completions: np.ndarray  # per DNN, inside the measurement window
    rates: np.ndarray  # completions / measured window
    latencies_s: List[List[float]]  # per DNN, per completed frame
    device_busy_s: np.ndarray
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def average_throughput(self) -> float:
        """Mix-average completion rate (the paper's ``T``)."""
        return float(self.rates.mean())

    @property
    def device_utilization(self) -> np.ndarray:
        """Busy fraction per device over the full run."""
        return self.device_busy_s / self.duration_s

    def mean_latency(self, dnn_index: int) -> float:
        """Average end-to-end latency of a DNN's completed frames."""
        samples = self.latencies_s[dnn_index]
        if not samples:
            raise ValueError(f"DNN #{dnn_index} completed no frames")
        return float(np.mean(samples))

    def timeline(self, max_rows: int = 40) -> str:
        """A human-readable event log (first ``max_rows`` events)."""
        lines = [f"{'t start':>9} {'t end':>9}  dev  dnn  frame  stage"]
        for event in self.events[:max_rows]:
            lines.append(
                f"{event.start_s:9.4f} {event.end_s:9.4f} "
                f"{event.device_id:>4} {event.dnn_index:>4} "
                f"{event.frame_index:>6} {event.stage_index:>6}"
            )
        if len(self.events) > max_rows:
            lines.append(f"... {len(self.events) - max_rows} more events")
        return "\n".join(lines)


class TraceSimulator:
    """Event-driven execution of a mapped multi-DNN workload."""

    def __init__(
        self,
        platform: Platform,
        cost_model: Optional[KernelCostModel] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.platform = platform
        self.cost_model = cost_model or KernelCostModel()
        self.config = config or SimConfig()
        # Reuse the fluid simulator for stage pricing and the composite
        # device inflation so both views share one physics.
        self._board = BoardSimulator(platform, self.cost_model, self.config)

    def run(
        self,
        models: Sequence[ModelGraph],
        mapping: Mapping,
        duration_s: float = 10.0,
        offered_rates: Optional[Sequence[float]] = None,
        warmup_fraction: float = 0.2,
        record_events: bool = False,
        max_frames_per_dnn: int = 100_000,
    ) -> TraceResult:
        """Execute the mix for ``duration_s`` simulated seconds.

        Frames arrive periodically at each DNN's offered rate (cameras
        are periodic sources).  ``warmup_fraction`` of the run is
        excluded from rate measurement so pipeline fill does not skew
        the numbers.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        num_dnns = len(models)
        if num_dnns == 0:
            raise ValueError("cannot trace an empty mix")
        steady = self._board.simulate(models, mapping, offered_rates=offered_rates)
        plans = steady.plans
        scale = steady.device_scale
        if offered_rates is None:
            offered = np.full(num_dnns, self.config.offered_rate)
        else:
            offered = np.asarray(list(offered_rates), dtype=float)

        # Per (dnn, stage): inflated service time on its device.
        stage_service: List[List[Tuple[int, float]]] = []
        for plan in plans:
            stage_service.append(
                [
                    (
                        stage.device_id,
                        stage.service_time * scale[stage.device_id],
                    )
                    for stage in plan.stages
                ]
            )

        warmup_s = duration_s * warmup_fraction
        events: List[TraceEvent] = []
        completions = np.zeros(num_dnns, dtype=int)
        latencies: List[List[float]] = [[] for _ in range(num_dnns)]
        num_devices = self.platform.num_devices
        device_busy = np.zeros(num_devices)

        # Per (device, dnn): FIFO of (ready_time, frame, stage, arrival)
        # plus the service each DNN has attained on the device so far.
        queues: List[List[deque]] = [
            [deque() for _ in range(num_dnns)] for _ in range(num_devices)
        ]
        attained = np.zeros((num_devices, num_dnns))
        device_free_at = np.zeros(num_devices)

        def push_ready(
            device_id: int,
            ready_time: float,
            dnn: int,
            frame: int,
            stage: int,
            arrival: float,
        ) -> None:
            queues[device_id][dnn].append((ready_time, frame, stage, arrival))

        # Seed arrivals: frame k of DNN i arrives at k / offered[i].
        for dnn in range(num_dnns):
            period = 1.0 / offered[dnn]
            num_frames = min(int(duration_s / period) + 1, max_frames_per_dnn)
            for frame in range(num_frames):
                arrival = frame * period
                if arrival >= duration_s:
                    break
                device_id = stage_service[dnn][0][0]
                push_ready(device_id, arrival, dnn, frame, 0, arrival)

        def next_dispatch(device_id: int):
            """(start_time, dnn) the device would run next, or None."""
            free_at = device_free_at[device_id]
            ready_now: List[int] = []
            earliest_time = float("inf")
            earliest_dnn = -1
            for dnn in range(num_dnns):
                queue = queues[device_id][dnn]
                if not queue:
                    continue
                ready_time = queue[0][0]
                if ready_time <= free_at:
                    ready_now.append(dnn)
                elif ready_time < earliest_time:
                    earliest_time = ready_time
                    earliest_dnn = dnn
            if ready_now:
                # Least-attained-service among tasks ready right now.
                chosen = min(ready_now, key=lambda d: (attained[device_id, d], d))
                return free_at, chosen
            if earliest_dnn >= 0:
                return earliest_time, earliest_dnn
            return None

        # Greedy event loop: always run the device able to start the
        # earliest task next.
        while True:
            best_device = -1
            best_start = float("inf")
            best_dnn = -1
            for device_id in range(num_devices):
                dispatch = next_dispatch(device_id)
                if dispatch is None:
                    continue
                start, dnn = dispatch
                if start < best_start:
                    best_start, best_device, best_dnn = start, device_id, dnn
            if best_device < 0 or best_start >= duration_s:
                break
            _, frame, stage, arrival = queues[best_device][best_dnn].popleft()
            service = stage_service[best_dnn][stage][1]
            end = best_start + service
            device_free_at[best_device] = end
            device_busy[best_device] += service
            attained[best_device, best_dnn] += service
            if record_events:
                events.append(
                    TraceEvent(
                        device_id=best_device,
                        dnn_index=best_dnn,
                        frame_index=frame,
                        stage_index=stage,
                        start_s=best_start,
                        end_s=end,
                    )
                )
            if stage + 1 < len(stage_service[best_dnn]):
                next_device = stage_service[best_dnn][stage + 1][0]
                push_ready(next_device, end, best_dnn, frame, stage + 1, arrival)
            else:
                if warmup_s <= end <= duration_s:
                    completions[best_dnn] += 1
                    latencies[best_dnn].append(end - arrival)

        measured_window = duration_s - warmup_s
        rates = completions / measured_window
        return TraceResult(
            duration_s=duration_s,
            warmup_s=warmup_s,
            completions=completions,
            rates=rates,
            latencies_s=latencies,
            device_busy_s=device_busy,
            events=events,
        )
