"""Kernel-based exploration: building per-layer latency tables.

The paper's design-time step records the execution time of every kernel
of every DNN layer on every computing component (Eq. 1) and assembles
per-model performance vectors (Eq. 2).  Our profiler does the same
against the board simulator's kernel cost model, adding seeded
measurement noise so that downstream consumers (the embedding tensor
and the estimator trained on it) never observe the analytical oracle
exactly -- the same epistemic position the real framework is in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..hw.kernels import KernelCostModel
from ..hw.platform_ import Platform
from ..models.graph import ModelGraph

__all__ = ["LatencyTable", "KernelProfiler"]


@dataclass(frozen=True)
class LatencyTable:
    """Measured per-layer latencies for one mix of models.

    ``tables[name]`` has shape ``(num_devices, num_layers_of_model)``
    with entry ``[d, l]`` = seconds for layer ``l`` on device ``d``
    (the paper's ``B_l^alpha``).
    """

    platform_name: str
    tables: Dict[str, np.ndarray]

    def latency(self, model_name: str, device_id: int, layer_index: int) -> float:
        """Measured latency of one (model, device, layer) triple."""
        return float(self.tables[model_name][device_id, layer_index])

    def performance_vector(self, model_name: str, device_id: int) -> np.ndarray:
        """The paper's Eq. 2 vector ``p_m^alpha`` for one model/device."""
        return self.tables[model_name][device_id].copy()

    @property
    def model_names(self) -> Sequence[str]:
        return tuple(self.tables)

    @property
    def num_devices(self) -> int:
        first = next(iter(self.tables.values()))
        return first.shape[0]


class KernelProfiler:
    """Records kernel execution times on the (simulated) board.

    Parameters
    ----------
    platform:
        The board to profile.
    cost_model:
        Kernel latency model (defaults to the standard roofline).
    noise_sigma:
        Relative standard deviation of per-kernel measurement noise;
        0 gives oracle-exact tables.
    repetitions:
        Number of simulated measurement repetitions averaged per
        kernel.  More repetitions shrink the noise like a real
        profiling run re-executing kernels.
    """

    def __init__(
        self,
        platform: Platform,
        cost_model: Optional[KernelCostModel] = None,
        noise_sigma: float = 0.03,
        repetitions: int = 5,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.platform = platform
        self.cost_model = cost_model or KernelCostModel()
        self.noise_sigma = noise_sigma
        self.repetitions = repetitions

    def profile_model(
        self, model: ModelGraph, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Latency table ``(num_devices, num_layers)`` for one model."""
        rng = rng or np.random.default_rng(0)
        table = np.zeros((self.platform.num_devices, model.num_layers))
        for device in self.platform.devices:
            for layer_index, layer in enumerate(model.layers):
                total = 0.0
                for kernel in layer.kernels:
                    true_latency = self.cost_model.latency(kernel, device)
                    if self.noise_sigma > 0:
                        samples = rng.normal(
                            1.0, self.noise_sigma, size=self.repetitions
                        ).clip(0.7, 1.3)
                        total += true_latency * float(samples.mean())
                    else:
                        total += true_latency
                table[device.device_id, layer_index] = total
        return table

    def profile(
        self,
        models: Sequence[ModelGraph],
        seed: int = 0,
    ) -> LatencyTable:
        """Profile every model on every device of the platform."""
        rng = np.random.default_rng(seed)
        tables = {model.name: self.profile_model(model, rng) for model in models}
        return LatencyTable(platform_name=self.platform.name, tables=tables)
