"""Pipeline compilation: from a mapping to per-stage service times.

Given a mix and a mapping, this module prices every pipeline stage:
its compute time (sum of kernel latencies on the stage's device, paper
Eq. 1) and its inbound transfer time (activation handoff from the
previous stage's device).  The resulting :class:`PipelinePlan` objects
are what the contention solver and all reporting consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..hw.kernels import KernelCostModel
from ..hw.platform_ import Platform
from ..models.graph import ModelGraph
from .mapping import Mapping, Stage

__all__ = ["StagePlan", "PipelinePlan", "compile_pipelines", "layer_latency"]


def layer_latency(
    model: ModelGraph,
    layer_index: int,
    device_id: int,
    platform: Platform,
    cost_model: KernelCostModel,
) -> float:
    """Latency of one layer on one device (sum of its kernels, Eq. 1)."""
    device = platform.device(device_id)
    layer = model.layers[layer_index]
    return sum(cost_model.latency(kernel, device) for kernel in layer.kernels)


@dataclass(frozen=True)
class StagePlan:
    """One priced pipeline stage.

    ``service_time`` is the stage's total occupancy per inference on
    its device: inbound activation transfer plus compute.  Transfers
    are attributed to the consuming (downstream) stage, matching how
    the ACL runtime blocks the consumer on buffer map/unmap.
    """

    stage: Stage
    compute_time: float
    transfer_time: float

    @property
    def device_id(self) -> int:
        return self.stage.device_id

    @property
    def service_time(self) -> float:
        return self.compute_time + self.transfer_time


@dataclass(frozen=True)
class PipelinePlan:
    """The priced pipeline of one DNN under a mapping."""

    model_name: str
    stages: Tuple[StagePlan, ...]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_time(self) -> float:
        """Service time of the slowest stage.

        With layer-pipelined execution the DNN's standalone throughput
        is ``1 / bottleneck_time`` (a new inference enters as soon as
        the slowest stage frees up).
        """
        return max(plan.service_time for plan in self.stages)

    @property
    def total_service_time(self) -> float:
        """Sum of stage service times (the single-inference latency)."""
        return sum(plan.service_time for plan in self.stages)

    @property
    def total_transfer_time(self) -> float:
        """Seconds per inference spent crossing device boundaries."""
        return sum(plan.transfer_time for plan in self.stages)

    def work_on_device(self, device_id: int) -> float:
        """Per-inference occupancy this DNN places on one device."""
        return sum(
            plan.service_time for plan in self.stages if plan.device_id == device_id
        )


def compile_pipelines(
    models: Sequence[ModelGraph],
    mapping: Mapping,
    platform: Platform,
    cost_model: KernelCostModel,
) -> List[PipelinePlan]:
    """Price every DNN's pipeline under ``mapping``.

    Raises ``ValueError`` if the mapping does not fit the mix.
    """
    mapping.validate(models, platform.num_devices)
    plans: List[PipelinePlan] = []
    for dnn_index, model in enumerate(models):
        stage_plans: List[StagePlan] = []
        previous_device: int = -1
        for stage in mapping.stages(dnn_index):
            device = platform.device(stage.device_id)
            compute = 0.0
            for layer in model.layers[stage.start : stage.end]:
                compute += sum(
                    cost_model.latency(kernel, device) for kernel in layer.kernels
                )
            transfer = 0.0
            if previous_device >= 0 and previous_device != stage.device_id:
                handoff_bytes = model.layers[stage.start - 1].output_bytes
                transfer = platform.transfer_time(
                    previous_device, stage.device_id, handoff_bytes
                )
            stage_plans.append(
                StagePlan(stage=stage, compute_time=compute, transfer_time=transfer)
            )
            previous_device = stage.device_id
        plans.append(PipelinePlan(model_name=model.name, stages=tuple(stage_plans)))
    return plans
