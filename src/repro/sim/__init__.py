"""Board simulator: the reproduction's stand-in for the HiKey970."""

from .contention import max_min_rates, processor_sharing_rates
from .mapping import Mapping, Stage
from .pipeline import PipelinePlan, StagePlan, compile_pipelines, layer_latency
from .profiler import KernelProfiler, LatencyTable
from .trace import TraceEvent, TraceResult, TraceSimulator
from .simulator import (
    BoardSimulator,
    BoardUnresponsiveError,
    SimConfig,
    SimulationResult,
    model_dram_bytes,
)

__all__ = [
    "BoardSimulator",
    "BoardUnresponsiveError",
    "KernelProfiler",
    "LatencyTable",
    "Mapping",
    "PipelinePlan",
    "SimConfig",
    "SimulationResult",
    "Stage",
    "TraceEvent",
    "TraceResult",
    "TraceSimulator",
    "StagePlan",
    "compile_pipelines",
    "layer_latency",
    "max_min_rates",
    "processor_sharing_rates",
    "model_dram_bytes",
]
