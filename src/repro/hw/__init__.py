"""Hardware substrate: devices, kernels, links and platform presets.

This package is the analytical stand-in for the physical HiKey970 board
used in the paper.  See ``DESIGN.md`` ("Hardware gate and the
substitution") for the rationale behind each model.
"""

from .device import DEFAULT_EFFICIENCY, Device, DeviceKind
from .kernels import KERNEL_KINDS, KernelCostModel, KernelSpec
from .platform_ import Link, MemorySystem, Platform
from .power import DevicePowerSpec, PowerModel, PowerReport, hikey970_power
from .presets import (
    BIG_CPU_ID,
    GPU_ID,
    LITTLE_CPU_ID,
    NPU_ID,
    cloud_tier,
    cpu_only_board,
    hikey970,
    hikey970_with_npu,
    symmetric_board,
)

__all__ = [
    "DEFAULT_EFFICIENCY",
    "Device",
    "DeviceKind",
    "DevicePowerSpec",
    "KERNEL_KINDS",
    "KernelCostModel",
    "KernelSpec",
    "Link",
    "MemorySystem",
    "Platform",
    "PowerModel",
    "PowerReport",
    "hikey970_power",
    "BIG_CPU_ID",
    "GPU_ID",
    "LITTLE_CPU_ID",
    "NPU_ID",
    "cloud_tier",
    "cpu_only_board",
    "hikey970",
    "hikey970_with_npu",
    "symmetric_board",
]
