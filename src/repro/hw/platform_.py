"""Platform model: a set of devices plus the interconnect between them.

A :class:`Platform` is what the scheduler sees: an ordered list of
computing components and, for every ordered device pair, a
:class:`Link` describing how expensive it is to hand activations from a
pipeline stage on one device to the next stage on another.

On a shared-memory SoC like the HiKey970 there is no explicit DMA
fabric between the CPU clusters and the GPU -- a "transfer" is really a
buffer map/unmap plus cache maintenance.  We model that as a fixed
latency plus a bandwidth term, which is both how the ARM Compute
Library behaves in practice and all the granularity the scheduler can
observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .device import Device

__all__ = ["Link", "MemorySystem", "Platform"]


@dataclass(frozen=True)
class Link:
    """Cost model for moving data between two devices.

    ``transfer_time = latency_s + bytes / bandwidth`` for transfers
    between distinct devices; same-device "transfers" are free (the
    tensor is already resident).
    """

    bandwidth_gbs: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError(f"link bandwidth must be positive, got {self.bandwidth_gbs}")
        if self.latency_s < 0:
            raise ValueError(f"link latency must be non-negative, got {self.latency_s}")

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError(f"cannot transfer a negative byte count ({num_bytes})")
        return self.latency_s + num_bytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class MemorySystem:
    """Shared memory-controller model used for multi-DNN pressure.

    Concurrent DNNs compete for the LPDDR controller and for the small
    system-level cache.  The paper observed this directly: mixes of six
    concurrent DNNs exceeded the board's capability and made it
    unresponsive.  We reproduce the effect with a soft penalty that
    grows with the number of co-resident networks beyond
    ``comfortable_residency`` and a hard cliff at ``max_residency``.

    Parameters
    ----------
    total_bandwidth_gbs:
        Aggregate DRAM controller bandwidth (all devices combined).
    comfortable_residency:
        Number of concurrent DNNs the memory system absorbs without
        measurable interference.
    pressure_per_dnn:
        Fractional slowdown added per co-resident DNN beyond the
        comfortable point (e.g. 0.18 = 18% per extra network).
    max_residency:
        Residency at which the board becomes unresponsive; the
        simulator raises instead of returning numbers past this point.
    """

    total_bandwidth_gbs: float = 25.6
    comfortable_residency: int = 3
    pressure_per_dnn: float = 0.18
    max_residency: int = 5

    def pressure_factor(self, num_dnns: int) -> float:
        """Multiplicative slowdown applied to all stage latencies.

        Returns 1.0 when at or below the comfortable residency and grows
        linearly beyond it.
        """
        if num_dnns < 0:
            raise ValueError(f"num_dnns must be non-negative, got {num_dnns}")
        excess = max(0, num_dnns - self.comfortable_residency)
        return 1.0 + self.pressure_per_dnn * excess


class Platform:
    """An ordered collection of devices plus their interconnect.

    Parameters
    ----------
    name:
        Platform label (``"HiKey970"``).
    devices:
        Devices in id order; ``devices[i].device_id`` must equal ``i``.
    links:
        Mapping from ``(src_id, dst_id)`` to :class:`Link`.  Pairs not
        present fall back to ``default_link``.  Same-device pairs never
        consult the table (cost 0).
    default_link:
        Fallback link for unlisted device pairs.
    memory:
        Shared memory-system model.
    """

    def __init__(
        self,
        name: str,
        devices: Sequence[Device],
        links: Optional[Dict[Tuple[int, int], Link]] = None,
        default_link: Optional[Link] = None,
        memory: Optional[MemorySystem] = None,
    ) -> None:
        if not devices:
            raise ValueError("a platform needs at least one device")
        for index, device in enumerate(devices):
            if device.device_id != index:
                raise ValueError(
                    f"devices must be listed in id order: position {index} "
                    f"holds device_id {device.device_id}"
                )
        self.name = name
        self.devices: List[Device] = list(devices)
        self.links: Dict[Tuple[int, int], Link] = dict(links or {})
        self.default_link = default_link or Link(bandwidth_gbs=6.0, latency_s=150e-6)
        self.memory = memory or MemorySystem()
        for (src, dst) in self.links:
            self._check_device_id(src)
            self._check_device_id(dst)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        """Number of computing components on the platform."""
        return len(self.devices)

    def device(self, device_id: int) -> Device:
        """Return the device with the given id."""
        self._check_device_id(device_id)
        return self.devices[device_id]

    def device_named(self, name: str) -> Device:
        """Return the device whose name matches ``name`` exactly."""
        for device in self.devices:
            if device.name == name:
                return device
        raise KeyError(f"no device named {name!r} on platform {self.name!r}")

    def devices_of_kind(self, kind: str) -> List[Device]:
        """All devices of a given :class:`~repro.hw.device.DeviceKind`."""
        return [device for device in self.devices if device.kind == kind]

    # ------------------------------------------------------------------
    # Interconnect
    # ------------------------------------------------------------------
    def link(self, src_id: int, dst_id: int) -> Optional[Link]:
        """The link between two distinct devices (None for same device)."""
        self._check_device_id(src_id)
        self._check_device_id(dst_id)
        if src_id == dst_id:
            return None
        return self.links.get((src_id, dst_id), self.default_link)

    def transfer_time(self, src_id: int, dst_id: int, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` from ``src_id`` to ``dst_id``.

        Zero when source and destination are the same device.
        """
        link = self.link(src_id, dst_id)
        if link is None:
            return 0.0
        return link.transfer_time(num_bytes)

    def _check_device_id(self, device_id: int) -> None:
        if not 0 <= device_id < len(self.devices):
            raise KeyError(
                f"device id {device_id} out of range for platform {self.name!r} "
                f"with {len(self.devices)} devices"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(device.name for device in self.devices)
        return f"Platform({self.name!r}: {names})"
