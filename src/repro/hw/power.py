"""Board power modeling — the energy extension of the reproduction.

The paper optimizes throughput only, but every embedded deployment it
motivates (digital assistants, AR, drones) is battery-constrained, and
the authors position OmniBoost as *extensible*: swapping the reward is
the intended extension axis.  This module supplies the missing
substrate: a first-order power model of the board, power/energy
accounting for simulation results, and the design-time quantities an
energy-aware scheduling objective needs (see
:mod:`repro.core.objectives`).

The model is the standard linear utilization model used by mobile SoC
power estimators: each computing component draws ``idle_w`` when
powered but unused and ramps linearly to ``active_w`` at full
utilization; the board adds a constant base draw (regulators, DRAM
refresh, peripherals).  Absolute watt figures are first-order estimates
from public HiKey970/Kirin-970 measurements — as with the latency
model, only the orderings and rough ratios matter for scheduling
behaviour (the GPU is the most efficient *per inference* on dense work
despite the highest draw; the LITTLE cluster draws least but runs so
slowly that its energy per inference is often worse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from .device import DeviceKind
from .platform_ import Platform

if TYPE_CHECKING:  # higher-layer types used in annotations only
    from ..models.graph import ModelGraph
    from ..sim.mapping import Mapping
    from ..sim.profiler import LatencyTable

__all__ = [
    "DevicePowerSpec",
    "PowerModel",
    "PowerReport",
    "hikey970_power",
]


@dataclass(frozen=True)
class DevicePowerSpec:
    """Linear utilization power model of one computing component.

    Parameters
    ----------
    idle_w:
        Draw when the component is powered but idle (clock-gated
        pipelines, retention leakage).
    active_w:
        Draw at full utilization.
    """

    idle_w: float
    active_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ValueError(f"idle_w must be non-negative, got {self.idle_w}")
        if self.active_w < self.idle_w:
            raise ValueError(
                f"active_w ({self.active_w}) must be >= idle_w ({self.idle_w})"
            )

    def power_at(self, utilization: float) -> float:
        """Draw in watts at a utilization in [0, 1] (clamped)."""
        utilization = min(max(utilization, 0.0), 1.0)
        return self.idle_w + (self.active_w - self.idle_w) * utilization

    @property
    def dynamic_w(self) -> float:
        """The utilization-proportional share of the draw."""
        return self.active_w - self.idle_w


#: First-order per-kind power specs for the HiKey970 class of SoC.
DEFAULT_POWER_SPECS: Dict[str, DevicePowerSpec] = {
    DeviceKind.GPU: DevicePowerSpec(idle_w=0.25, active_w=4.5),
    DeviceKind.BIG_CPU: DevicePowerSpec(idle_w=0.30, active_w=3.9),
    DeviceKind.LITTLE_CPU: DevicePowerSpec(idle_w=0.15, active_w=1.3),
    DeviceKind.NPU: DevicePowerSpec(idle_w=0.20, active_w=2.2),
}


@dataclass(frozen=True)
class PowerReport:
    """Power/energy accounting of one steady-state simulation.

    Attributes
    ----------
    per_device_w:
        Modeled draw of each computing component, platform device
        order.
    board_base_w:
        Constant board draw outside the computing components.
    total_throughput:
        Aggregate inferences/second of the mix the report was taken
        over.
    """

    per_device_w: np.ndarray
    board_base_w: float
    total_throughput: float

    @property
    def total_w(self) -> float:
        """Whole-board draw in watts."""
        return float(self.per_device_w.sum()) + self.board_base_w

    @property
    def energy_per_inference_j(self) -> float:
        """Joules the board spends per completed inference."""
        if self.total_throughput <= 0:
            raise ValueError(
                "energy per inference undefined at zero throughput"
            )
        return self.total_w / self.total_throughput

    @property
    def inferences_per_joule(self) -> float:
        """The efficiency metric energy-aware scheduling maximizes."""
        return self.total_throughput / self.total_w

    @property
    def energy_delay_product(self) -> float:
        """EDP per inference (J·s): energy/inference × time/inference."""
        return self.energy_per_inference_j / self.total_throughput


class PowerModel:
    """Linear-utilization power model of a whole platform.

    Parameters
    ----------
    board_base_w:
        Constant draw of everything that is not a computing component
        (DRAM refresh, regulators, peripherals).
    specs:
        Per-device-kind :class:`DevicePowerSpec`; kinds absent from the
        mapping fall back to ``default_spec``.
    """

    def __init__(
        self,
        board_base_w: float = 1.6,
        specs: Optional[Dict[str, DevicePowerSpec]] = None,
        default_spec: DevicePowerSpec = DevicePowerSpec(0.2, 2.0),
    ) -> None:
        if board_base_w < 0:
            raise ValueError(
                f"board_base_w must be non-negative, got {board_base_w}"
            )
        self.board_base_w = board_base_w
        self.specs = dict(DEFAULT_POWER_SPECS if specs is None else specs)
        self.default_spec = default_spec

    def spec_for(self, kind: str) -> DevicePowerSpec:
        """Power spec of a device kind."""
        return self.specs.get(kind, self.default_spec)

    # ------------------------------------------------------------------
    # Accounting over simulation results
    # ------------------------------------------------------------------
    def report(self, platform: Platform, result) -> PowerReport:
        """Power/energy report for a :class:`~repro.sim.simulator.SimulationResult`.

        Device utilizations drive the linear model; the result's
        aggregate rate converts draw into energy per inference.
        """
        utilization = np.asarray(result.device_utilization, dtype=float)
        per_device = np.empty(platform.num_devices)
        for device in platform.devices:
            spec = self.spec_for(device.kind)
            per_device[device.device_id] = spec.power_at(
                utilization[device.device_id]
            )
        return PowerReport(
            per_device_w=per_device,
            board_base_w=self.board_base_w,
            total_throughput=float(result.total_throughput),
        )

    # ------------------------------------------------------------------
    # Design-time quantities (no board access)
    # ------------------------------------------------------------------
    def dynamic_energy_per_inference(
        self,
        platform: Platform,
        models: Sequence[ModelGraph],
        mapping: Mapping,
        latency_table: LatencyTable,
    ) -> float:
        """Mix-average dynamic joules per inference of a mapping.

        Uses only design-time data (the profiled latency table): each
        layer contributes its measured latency on its assigned device
        times that device's dynamic power — ``E = sum_l B_l^alpha *
        P_dyn(alpha)``, averaged over the mix.  This is what an
        energy-aware objective can know *without* running the mapping.
        """
        if len(models) == 0:
            raise ValueError("need at least one model")
        if mapping.num_dnns != len(models):
            raise ValueError(
                f"mapping covers {mapping.num_dnns} DNNs, mix has {len(models)}"
            )
        total = 0.0
        for model, row in zip(models, mapping.assignments):
            for layer_index, device_id in enumerate(row):
                device = platform.device(device_id)
                latency = latency_table.latency(
                    model.name, device_id, layer_index
                )
                total += latency * self.spec_for(device.kind).dynamic_w
        return total / len(models)

    def idle_floor_w(self, platform: Platform) -> float:
        """Board draw with every component idle (the static floor)."""
        return self.board_base_w + sum(
            self.spec_for(device.kind).idle_w for device in platform.devices
        )


def hikey970_power() -> PowerModel:
    """Power model matching the :func:`~repro.hw.presets.hikey970` preset.

    Board base ~1.6 W (LPDDR4X refresh + rails + USB/UART glue); the
    component specs follow published Kirin-970 class measurements:
    Mali-G72 MP12 peaks near 4.5 W, the A73 quad near 3.9 W, the A53
    quad near 1.3 W.
    """
    return PowerModel(board_base_w=1.6, specs=dict(DEFAULT_POWER_SPECS))
