"""Ready-made platform configurations.

:func:`hikey970` is the board the paper evaluates on and the default
everywhere in this code base.  The parameter values are first-order
estimates assembled from public HiKey970 / Kirin 970 documentation:

* Mali-G72 MP12 at ~767 MHz: ~140 GFLOPS FP32 theoretical.  OpenCL
  kernel dispatch through the ACL runtime costs tens of microseconds.
* Cortex-A73 quad at 2.36 GHz: one 128-bit NEON FMA pipe per core
  (8 FLOP/cycle) gives ~75 GFLOPS for the cluster.
* Cortex-A53 quad at 1.8 GHz: narrower in-order NEON (~4 FLOP/cycle)
  gives ~29 GFLOPS for the cluster.
* LPDDR4X-1866, dual channel: ~25.6 GB/s at the controller, of which
  each client sees a fraction under load.

Absolute accuracy is not the goal -- the reproduction only needs the
relative ordering and rough ratios between the components, which these
numbers preserve (GPU ~2-4x big CPU on dense conv, big ~2.5-3x LITTLE).
"""

from __future__ import annotations

from .device import Device, DeviceKind
from .platform_ import Link, MemorySystem, Platform

__all__ = [
    "hikey970",
    "hikey970_with_npu",
    "GPU_ID",
    "BIG_CPU_ID",
    "LITTLE_CPU_ID",
    "NPU_ID",
    "cpu_only_board",
    "symmetric_board",
    "cloud_tier",
]

#: Device ids on the HiKey970 preset, in the order the paper lists them.
GPU_ID = 0
BIG_CPU_ID = 1
LITTLE_CPU_ID = 2
#: Device id of the NPU on the extended preset (see hikey970_with_npu).
NPU_ID = 3


def hikey970() -> Platform:
    """The HiKey970 development board used throughout the paper."""
    gpu = Device(
        device_id=GPU_ID,
        name="Mali-G72 MP12",
        kind=DeviceKind.GPU,
        peak_gflops=140.0,
        mem_bandwidth_gbs=14.0,
        launch_overhead_s=55e-6,
    )
    big = Device(
        device_id=BIG_CPU_ID,
        name="Cortex-A73 x4",
        kind=DeviceKind.BIG_CPU,
        peak_gflops=75.0,
        mem_bandwidth_gbs=9.0,
        launch_overhead_s=6e-6,
    )
    little = Device(
        device_id=LITTLE_CPU_ID,
        name="Cortex-A53 x4",
        kind=DeviceKind.LITTLE_CPU,
        peak_gflops=29.0,
        mem_bandwidth_gbs=6.0,
        launch_overhead_s=9e-6,
    )
    # GPU<->CPU hops pay an OpenCL queue flush, buffer map/unmap and
    # cache maintenance -- milliseconds on this class of driver stack;
    # CPU<->CPU hops ride the cache-coherent interconnect.
    gpu_cpu = Link(bandwidth_gbs=5.5, latency_s=3e-3)
    cpu_cpu = Link(bandwidth_gbs=9.0, latency_s=0.3e-3)
    links = {
        (GPU_ID, BIG_CPU_ID): gpu_cpu,
        (BIG_CPU_ID, GPU_ID): gpu_cpu,
        (GPU_ID, LITTLE_CPU_ID): gpu_cpu,
        (LITTLE_CPU_ID, GPU_ID): gpu_cpu,
        (BIG_CPU_ID, LITTLE_CPU_ID): cpu_cpu,
        (LITTLE_CPU_ID, BIG_CPU_ID): cpu_cpu,
    }
    memory = MemorySystem(
        total_bandwidth_gbs=25.6,
        comfortable_residency=3,
        pressure_per_dnn=0.18,
        max_residency=5,
    )
    return Platform("HiKey970", [gpu, big, little], links=links, memory=memory)


def hikey970_with_npu() -> Platform:
    """HiKey970 with its Cambricon NPU enabled.

    The paper could not use the NPU "due to compatibility issues with
    the utilized compute library"; this preset models the board as it
    would look with a working driver, and exists to demonstrate that
    every component of the reproduction (environment actions, embedding
    channels, estimator geometry, schedulers) generalizes beyond three
    devices.  NPU parameters follow the Kirin 970 marketing numbers
    (~1.9 TOPS int8, which we discount heavily for an fp16-equivalent
    sustained figure) with a high per-kernel offload cost.
    """
    base = hikey970()
    npu = Device(
        device_id=NPU_ID,
        name="Cambricon NPU",
        kind=DeviceKind.NPU,
        peak_gflops=480.0,
        mem_bandwidth_gbs=12.0,
        launch_overhead_s=150e-6,
    )
    npu_link = Link(bandwidth_gbs=4.0, latency_s=4e-3)
    links = dict(base.links)
    for device in base.devices:
        links[(device.device_id, NPU_ID)] = npu_link
        links[(NPU_ID, device.device_id)] = npu_link
    return Platform(
        "HiKey970+NPU",
        list(base.devices) + [npu],
        links=links,
        default_link=base.default_link,
        memory=base.memory,
    )


def cpu_only_board() -> Platform:
    """A big.LITTLE-only platform (no GPU), as targeted by Pipe-it [7].

    Useful for ablations that disable functional heterogeneity.
    """
    big = Device(
        device_id=0,
        name="Cortex-A73 x4",
        kind=DeviceKind.BIG_CPU,
        peak_gflops=75.0,
        mem_bandwidth_gbs=9.0,
        launch_overhead_s=6e-6,
    )
    little = Device(
        device_id=1,
        name="Cortex-A53 x4",
        kind=DeviceKind.LITTLE_CPU,
        peak_gflops=29.0,
        mem_bandwidth_gbs=6.0,
        launch_overhead_s=9e-6,
    )
    link = Link(bandwidth_gbs=9.0, latency_s=25e-6)
    links = {(0, 1): link, (1, 0): link}
    return Platform("big.LITTLE", [big, little], links=links, memory=MemorySystem())


def symmetric_board(num_devices: int = 3, peak_gflops: float = 60.0) -> Platform:
    """A homogeneous platform of identical devices.

    Degenerate case used by tests: with no heterogeneity the best
    mapping is pure load balancing, which gives cheap-to-verify
    invariants.
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    devices = [
        Device(
            device_id=index,
            name=f"core-{index}",
            kind=DeviceKind.BIG_CPU,
            peak_gflops=peak_gflops,
            mem_bandwidth_gbs=8.0,
            launch_overhead_s=5e-6,
        )
        for index in range(num_devices)
    ]
    return Platform("symmetric", devices, memory=MemorySystem())


def cloud_tier(
    num_devices: int = 6,
    peak_gflops: float = 120.0,
    network_latency_s: float = 25e-3,
    network_bandwidth_gbs: float = 0.9,
) -> Platform:
    """A DynO-style cloud onload tier: big, symmetric, and far away.

    Models the overflow target an edge fleet onloads mixes to when it
    saturates (Almeida et al., *DynO*, PAPERS.md): a rack-class pool of
    ``num_devices`` identical workers, each well above edge-device
    compute, behind a WAN hop.  The distance is the point — every
    kernel dispatch carries the network round-trip as launch overhead
    and every cross-device hop rides the WAN link, so the estimator
    scores the tier *below* an unloaded edge board and placement only
    overflows to it under pressure (and migrates work back once edge
    capacity recovers).  The larger ``max_residency`` is the onload
    headroom that absorbs a flash crowd.
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    devices = [
        Device(
            device_id=index,
            name=f"cloud-{index}",
            kind=DeviceKind.BIG_CPU,
            peak_gflops=peak_gflops,
            mem_bandwidth_gbs=12.0,
            # The network tax: every dispatch pays the WAN round-trip.
            launch_overhead_s=network_latency_s,
        )
        for index in range(num_devices)
    ]
    wan = Link(bandwidth_gbs=network_bandwidth_gbs, latency_s=network_latency_s)
    memory = MemorySystem(
        total_bandwidth_gbs=64.0,
        comfortable_residency=5,
        pressure_per_dnn=0.10,
        max_residency=8,
    )
    return Platform("cloud-tier", devices, default_link=wan, memory=memory)
