"""Computing-component models for heterogeneous embedded platforms.

The paper's target board (HiKey970) exposes three *computing components*:
a Mali-G72 MP12 GPU, a quad-core Cortex-A73 "big" CPU cluster and a
quad-core Cortex-A53 "LITTLE" CPU cluster.  OmniBoost treats each of
them as an opaque device with a measurable per-kernel execution time.

This module defines :class:`Device`, the analytical stand-in for one
such component.  A device is described by a handful of first-order
parameters (peak arithmetic throughput, effective memory bandwidth,
per-kernel dispatch overhead) plus a table of *efficiency factors*
keyed by kernel kind.  The efficiency table encodes well-known
micro-architectural asymmetries -- e.g. mobile GPUs run dense
convolutions near peak but are notoriously inefficient on depthwise
convolutions, while in-order LITTLE cores lose ground on large GEMMs
that thrash their small caches.

All latencies produced from these parameters are in seconds; sizes are
in bytes; arithmetic throughput is in FLOP/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["DeviceKind", "Device", "DEFAULT_EFFICIENCY"]


class DeviceKind:
    """Symbolic names for the classes of computing components we model.

    The values double as keys in efficiency tables and as human-readable
    labels in reports.
    """

    GPU = "gpu"
    BIG_CPU = "big_cpu"
    LITTLE_CPU = "little_cpu"
    NPU = "npu"

    ALL = (GPU, BIG_CPU, LITTLE_CPU, NPU)


#: Baseline efficiency factors (fraction of peak achieved) per device
#: kind and kernel kind.  These are deliberately coarse: the simulator
#: only needs the *ordering* and rough magnitudes to reproduce the
#: paper's behaviour, not cycle accuracy.
DEFAULT_EFFICIENCY: Dict[str, Dict[str, float]] = {
    DeviceKind.GPU: {
        "conv": 0.50,
        "depthwise_conv": 0.12,
        "gemm": 0.55,
        "pool": 0.35,
        "activation": 0.40,
        "norm": 0.30,
        "elementwise": 0.40,
        "softmax": 0.25,
        "transform": 0.35,
    },
    DeviceKind.BIG_CPU: {
        "conv": 0.42,
        "depthwise_conv": 0.38,
        "gemm": 0.48,
        "pool": 0.45,
        "activation": 0.55,
        "norm": 0.50,
        "elementwise": 0.55,
        "softmax": 0.45,
        "transform": 0.45,
    },
    DeviceKind.LITTLE_CPU: {
        "conv": 0.33,
        "depthwise_conv": 0.35,
        "gemm": 0.35,
        "pool": 0.40,
        "activation": 0.50,
        "norm": 0.45,
        "elementwise": 0.50,
        "softmax": 0.40,
        "transform": 0.40,
    },
    DeviceKind.NPU: {
        "conv": 0.80,
        "depthwise_conv": 0.60,
        "gemm": 0.80,
        "pool": 0.50,
        "activation": 0.50,
        "norm": 0.40,
        "elementwise": 0.50,
        "softmax": 0.30,
        "transform": 0.40,
    },
}


@dataclass(frozen=True)
class Device:
    """An analytical model of one computing component.

    Parameters
    ----------
    device_id:
        Dense integer index of the device inside its platform.  Mappings
        and embedding tensors index devices by this id.
    name:
        Human-readable name (``"Mali-G72 MP12"``).
    kind:
        One of :class:`DeviceKind`; selects the default efficiency table.
    peak_gflops:
        Theoretical single-precision arithmetic peak, in GFLOP/s.
    mem_bandwidth_gbs:
        Effective DRAM bandwidth available to this device, in GB/s.
        On a shared-memory SoC each component sees only a slice of the
        total controller bandwidth.
    launch_overhead_s:
        Fixed cost of dispatching one kernel (driver/queue overhead for
        the GPU, thread wake-up and scheduling for the CPU clusters).
    efficiency:
        Fraction-of-peak factors per kernel kind.  Missing kinds fall
        back to ``default_efficiency``.
    default_efficiency:
        Efficiency used for kernel kinds absent from ``efficiency``.
    """

    device_id: int
    name: str
    kind: str
    peak_gflops: float
    mem_bandwidth_gbs: float
    launch_overhead_s: float
    efficiency: Mapping[str, float] = field(default_factory=dict)
    default_efficiency: float = 0.35

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {self.device_id}")
        if self.peak_gflops <= 0:
            raise ValueError(f"peak_gflops must be positive, got {self.peak_gflops}")
        if self.mem_bandwidth_gbs <= 0:
            raise ValueError(
                f"mem_bandwidth_gbs must be positive, got {self.mem_bandwidth_gbs}"
            )
        if self.launch_overhead_s < 0:
            raise ValueError(
                f"launch_overhead_s must be non-negative, got {self.launch_overhead_s}"
            )
        if not self.efficiency:
            table = DEFAULT_EFFICIENCY.get(self.kind, {})
            object.__setattr__(self, "efficiency", dict(table))

    @property
    def peak_flops(self) -> float:
        """Arithmetic peak in FLOP/s."""
        return self.peak_gflops * 1e9

    @property
    def mem_bandwidth(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9

    def efficiency_for(self, kernel_kind: str) -> float:
        """Fraction of peak this device achieves on ``kernel_kind`` kernels."""
        return self.efficiency.get(kernel_kind, self.default_efficiency)

    def effective_flops(self, kernel_kind: str) -> float:
        """Achievable FLOP/s for a kernel kind (peak scaled by efficiency)."""
        return self.peak_flops * self.efficiency_for(kernel_kind)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} (#{self.device_id}, {self.kind})"
