"""Roofline-style kernel latency model.

OmniBoost profiles DNNs at *kernel* granularity (paper Eq. 1): the
latency of a layer on a computing component is the sum of the latencies
of the kernels that implement it.  On the real board those numbers come
from executing ARM Compute Library kernels; here they come from a
roofline model:

``time(kernel, device) = overhead + max(compute_time, memory_time)``

where ``compute_time = flops / (peak_flops * efficiency[kind])`` and
``memory_time = bytes_moved / bandwidth``.  The max() captures whether
the kernel is compute- or memory-bound on that device, which is the
single most important first-order effect: big dense convolutions are
compute-bound everywhere, pooling/activation layers are memory-bound
everywhere, and depthwise convolutions flip between the two depending
on the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import Device

__all__ = ["KernelSpec", "KernelCostModel", "KERNEL_KINDS"]

#: The kernel taxonomy used across the code base.  Layer builders in
#: :mod:`repro.models` decompose layers into kernels of these kinds.
KERNEL_KINDS = (
    "conv",
    "depthwise_conv",
    "gemm",
    "pool",
    "activation",
    "norm",
    "elementwise",
    "softmax",
    "transform",
)


@dataclass(frozen=True)
class KernelSpec:
    """A single device-executable kernel.

    Parameters
    ----------
    kind:
        One of :data:`KERNEL_KINDS`; selects the device efficiency factor.
    flops:
        Floating point operations performed by the kernel.
    bytes_read / bytes_written:
        Traffic to and from memory, in bytes.  Used for the memory-bound
        side of the roofline.
    name:
        Optional label for reports (``"conv3x3_64"``).
    """

    kind: str
    flops: float
    bytes_read: float
    bytes_written: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {self.kind!r}; expected one of {KERNEL_KINDS}")
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("kernel flops/bytes must be non-negative")

    @property
    def bytes_moved(self) -> float:
        """Total memory traffic of the kernel in bytes."""
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic (0 for pure data movement)."""
        moved = self.bytes_moved
        if moved == 0:
            return 0.0
        return self.flops / moved


class KernelCostModel:
    """Maps (kernel, device) pairs to latencies via the roofline model.

    The model is deterministic; measurement noise is added by the
    profiler (:mod:`repro.sim.profiler`), not here, so that the
    simulator can also act as a noise-free oracle for ablations.
    """

    def latency(self, kernel: KernelSpec, device: Device) -> float:
        """Latency in seconds of running ``kernel`` once on ``device``."""
        compute_time = 0.0
        if kernel.flops > 0:
            compute_time = kernel.flops / device.effective_flops(kernel.kind)
        memory_time = kernel.bytes_moved / device.mem_bandwidth
        return device.launch_overhead_s + max(compute_time, memory_time)

    def is_compute_bound(self, kernel: KernelSpec, device: Device) -> bool:
        """True when the kernel's runtime on ``device`` is dominated by math."""
        compute_time = kernel.flops / device.effective_flops(kernel.kind) if kernel.flops else 0.0
        memory_time = kernel.bytes_moved / device.mem_bandwidth
        return compute_time >= memory_time
