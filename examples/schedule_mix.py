#!/usr/bin/env python3
"""Compare all four schedulers on a user-chosen mix (one Fig.-5 bar group).

Pick any subset of the eleven dataset models, e.g.::

    python examples/schedule_mix.py vgg19 resnet50 inception_v3 alexnet

The script trains the estimator (or loads a checkpoint saved by
``train_estimator.py``), schedules the mix with the baseline, MOSAIC,
the GA and OmniBoost, deploys each mapping on the simulated board and
prints measured + normalized throughput plus the modeled on-board
decision time of Section V-B.
"""

import argparse
import os

from repro import MODEL_NAMES, SystemBuilder, Workload
from repro.evaluation import RuntimeCostModel, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "models",
        nargs="*",
        default=["vgg19", "resnet50", "inception_v3", "alexnet"],
        help=f"mix members, out of: {', '.join(MODEL_NAMES)}",
    )
    parser.add_argument("--checkpoint", type=str, default="")
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    args = parser.parse_args()

    mix = Workload.from_names(args.models)
    print(f"Mix: {', '.join(mix.model_names)} ({mix.total_layers} layers, "
          f"{mix.total_weight_bytes / 1e9:.2f} GB weights)\n")

    builder = SystemBuilder()
    if args.checkpoint and os.path.exists(args.checkpoint):
        builder.from_checkpoint(args.checkpoint)
        print(f"Loading estimator checkpoint {args.checkpoint}")
    else:
        builder.with_estimator(
            num_training_samples=args.samples, epochs=args.epochs
        )
    system = builder.build()

    cost_model = RuntimeCostModel()
    rows = []
    baseline_throughput = None
    for scheduler in system.schedulers:
        decision = scheduler.schedule(mix)
        result = system.simulator.measure(mix.models, decision.mapping)
        if scheduler.name == "Baseline":
            baseline_throughput = result.average_throughput
        rows.append(
            [
                scheduler.name,
                f"{result.average_throughput:.2f}",
                f"{result.average_throughput / baseline_throughput:.2f}",
                f"{cost_model.decision_time(decision.cost):.1f}",
                f"{max(result.device_utilization):.2f}",
            ]
        )
    print(
        format_table(
            [
                "scheduler",
                "T (inf/s)",
                "normalized",
                "board decision (s)",
                "peak device util",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
