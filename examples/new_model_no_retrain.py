#!/usr/bin/env python3
"""Add a new DNN to a deployed OmniBoost *without retraining*.

``custom_model.py`` shows the full design-time rebuild.  This example
shows the cheaper production path the paper's contribution (iii)
implies: the deployment reserved embedding-tensor capacity at design
time, so a network that arrives later is

1. kernel-profiled on the board (seconds, Eq. 1),
2. appended as a fresh column of ``U`` on the *frozen* design-time
   scale (``EmbeddingSpace.extend``), and
3. scheduled immediately via the same trained estimator
   (``ThroughputEstimator.with_embedding``) — zero new training, and
   every prediction about existing mixes stays bit-identical because
   the input geometry is unchanged.

The newcomers here are the extension zoo (ResNet-18, DenseNet-121,
EfficientNet-B0), which are deliberately excluded from the design-time
dataset.
"""

import argparse

from repro import SystemBuilder, Workload
from repro.core import MCTSConfig, OmniBoostScheduler
from repro.evaluation import format_table
from repro.models import EXTENSION_MODEL_NAMES, build_model
from repro.sim import KernelProfiler, Mapping


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--companions", nargs="*",
                        default=["vgg19", "resnet50", "inception_v3"])
    args = parser.parse_args()

    # Design time: reserve room for future models (64 layers tall,
    # 14 columns wide -- 3 spare).
    system = (
        SystemBuilder()
        .with_estimator(
            num_training_samples=args.samples,
            epochs=args.epochs,
            reserve_layers=64,
            reserve_models=14,
        )
        .build()
    )
    print(f"design-time embedding geometry: {system.embedding.input_shape}")

    # A new model arrives: profile it and extend the embedding space.
    newcomers = list(EXTENSION_MODEL_NAMES)
    profiler = KernelProfiler(system.platform)
    table = profiler.profile([build_model(n) for n in newcomers], seed=97)
    extended = system.embedding.extend(table, newcomers)
    estimator = system.estimator.with_embedding(extended)
    print(f"extended embedding geometry:    {extended.input_shape} "
          "(unchanged -> no retraining, old predictions intact)")

    scheduler = OmniBoostScheduler(estimator, config=MCTSConfig(seed=11))
    rows = []
    for newcomer in newcomers:
        mix = Workload.from_names([newcomer, *args.companions])
        baseline = system.simulator.simulate(
            mix.models, Mapping.single_device(mix.models, 0)
        ).average_throughput
        decision = scheduler.schedule(mix)
        measured = system.simulator.simulate(mix.models, decision.mapping)
        rows.append(
            [
                newcomer,
                f"{baseline:.2f}",
                f"{measured.average_throughput:.2f}",
                f"{measured.average_throughput / baseline:.2f}",
                decision.mapping.max_stages,
            ]
        )
    print()
    print(
        format_table(
            ["newcomer", "baseline T", "OmniBoost T", "normalized", "stages"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
