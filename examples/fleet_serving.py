#!/usr/bin/env python3
"""Fleet serving end to end: one request stream, three boards.

A production deployment outgrows one HiKey970 long before it outgrows
one estimator: the throughput lever becomes *which board* serves each
mix.  This example assembles a heterogeneous three-board cluster
(stock HiKey970, the NPU-enabled variant, a big.LITTLE-only board) and
drives it through both fleet surfaces:

1. a **request burst** — eight mixes land at once; the placement layer
   scores each mix on every board's own estimator (discounted by the
   load the burst has already routed there), each board answers its
   share in one pooled ``schedule_many`` call, and the fleet stats
   rollup shows the placement/pooling economics;
2. a **churn trace** — tenants arrive and depart past any single
   board's residency cap; arrivals are placed against live tenancy,
   every board re-plans its own changes warm, and departures that
   leave the fleet imbalanced trigger a cross-board migration.  The
   aggregated ``TimelineReport`` (every board's events interleaved,
   board-tagged) is optionally written as JSON.

CI runs this script as the ``fleet-smoke`` job and uploads the
timeline artifact.
"""

import argparse

from repro import Cluster, FleetService
from repro.core import MCTSConfig
from repro.evaluation import write_timeline_json
from repro.online import OnlineConfig
from repro.workloads import fleet_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--samples", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument(
        "--budget", type=int, default=120, help="MCTS budget per search"
    )
    parser.add_argument("--events", type=int, default=16)
    parser.add_argument("--trace-seed", type=int, default=0)
    parser.add_argument("--warm-patience", type=int, default=40)
    parser.add_argument(
        "--placement", default="estimator", choices=["estimator", "greedy-load"]
    )
    parser.add_argument(
        "--report", type=str, default="", help="write the fleet TimelineReport JSON here"
    )
    args = parser.parse_args()

    cluster = Cluster.from_presets(
        {
            "edge0": "hikey970",
            "edge1": "hikey970_with_npu",
            "edge2": "cpu_only_board",
        },
        seed=args.seed,
        estimator={
            "num_training_samples": args.samples,
            "epochs": args.epochs,
        },
        mcts_config=MCTSConfig(budget=args.budget, seed=args.seed + 5),
    )
    service = FleetService(cluster, placement=args.placement)
    print(
        "cluster: "
        + ", ".join(f"{board.name}={board.preset}" for board in cluster)
    )

    # ------------------------------------------------------------------
    # 1. A burst of eight mixes, placed and answered per board.
    # ------------------------------------------------------------------
    burst = fleet_scenario("request-burst").build_mixes(args.seed)
    print(f"\nburst: {len(burst)} mixes arriving at once")
    responses = service.schedule_many(burst)
    for mix, response in zip(burst, responses):
        print(
            f"  {mix.name:<30} -> {response.board:<6} "
            f"score {response.expected_score:.3f} "
            f"({response.response.cache_status})"
        )
    print(service.stats().summary())

    # ------------------------------------------------------------------
    # 2. A churn trace deeper than any one board's residency cap.
    # ------------------------------------------------------------------
    trace = fleet_scenario("fleet-churn").build_trace(args.trace_seed)
    if args.events:
        trace = trace.truncated(args.events)
    print(
        f"\ntrace: {len(trace)} events over {trace.horizon_s:.1f}s, "
        f"peak {trace.max_concurrency} tenants (one board hosts five)"
    )
    report = service.run_trace(
        trace, online=OnlineConfig(warm_patience=args.warm_patience)
    )
    print(report.event_table())
    print(f"\n{report.summary()}")
    for board in report.boards:
        sub = report.for_board(board)
        print(f"  {board}: {len(sub.records)} events, {sub.warm_fraction:.0%} warm")
    stats = service.stats()
    print(stats.summary())
    print(
        f"migrations: {stats.migrations}, "
        f"placement evaluations: {stats.placement_evaluations}"
    )

    if args.report:
        write_timeline_json(report, args.report)
        print(f"\nfleet timeline report written to {args.report}")


if __name__ == "__main__":
    main()
