#!/usr/bin/env python3
"""Quickstart: schedule a 4-DNN mix with OmniBoost and measure it.

Builds the full system (simulated HiKey970, kernel profiling,
distributed embedding tensor, trained throughput estimator), schedules
one heavy mix with every scheduler and reports measured throughput.

Run time is kept short by training the estimator for 20 epochs on 300
samples; pass ``--paper-scale`` for the full 500-sample / 100-epoch
regimen from Section V.
"""

import argparse

from repro import SystemBuilder, Workload
from repro.evaluation import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full training regimen (slower)",
    )
    args = parser.parse_args()

    if args.paper_scale:
        builder = SystemBuilder().with_estimator(
            num_training_samples=500, epochs=100
        )
    else:
        builder = SystemBuilder().with_estimator(
            num_training_samples=300, epochs=20
        )
    system = builder.build()

    history = system.training_history
    print(
        f"Estimator trained: {system.estimator.num_parameters} parameters, "
        f"final L1 validation loss {history.final_val_loss:.3f} "
        f"({history.wall_time_s:.0f}s)"
    )

    mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
    print(f"\nScheduling mix: {', '.join(mix.model_names)}")

    rows = []
    baseline_throughput = None
    for scheduler in system.schedulers:
        decision = scheduler.schedule(mix)
        result = system.simulator.measure(mix.models, decision.mapping)
        if scheduler.name == "Baseline":
            baseline_throughput = result.average_throughput
        rows.append(
            [
                scheduler.name,
                f"{result.average_throughput:.2f}",
                f"{result.average_throughput / baseline_throughput:.2f}x",
                f"{decision.wall_time_s:.2f}",
                decision.mapping.max_stages,
            ]
        )
    print()
    print(
        format_table(
            ["scheduler", "T (inf/s)", "vs baseline", "decide (s)", "max stages"],
            rows,
        )
    )

    best = system.omniboost.schedule(mix)
    print("\nOmniBoost mapping (device id per layer):")
    for model, row in zip(mix.models, best.mapping.assignments):
        devices = "".join(str(device) for device in row)
        print(f"  {model.name:<14} {devices}")
    print("\nDevice ids: 0 = Mali-G72 GPU, 1 = Cortex-A73 big, 2 = Cortex-A53 LITTLE")


if __name__ == "__main__":
    main()
