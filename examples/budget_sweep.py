#!/usr/bin/env python3
"""Sweep the MCTS computational budget (the paper's Section V-B knob).

The paper fixes the budget at 500 iterations as the best trade-off
between decision latency (~30 s on-device) and solution quality, noting
"budgetary constraints can be adjusted for any use-case scenario".
This example shows the trade-off curve: measured throughput of the
chosen mapping and estimator-query count versus budget.
"""

import argparse

from repro import Workload, build_system
from repro.core import MCTSConfig, OmniBoostScheduler
from repro.evaluation import RuntimeCostModel, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budgets",
        type=int,
        nargs="*",
        default=[25, 50, 100, 250, 500, 1000],
    )
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    args = parser.parse_args()

    system = build_system(num_training_samples=args.samples, epochs=args.epochs)
    mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
    baseline = system.simulator.simulate(
        mix.models, system.baseline.schedule(mix).mapping
    ).average_throughput

    cost_model = RuntimeCostModel()
    rows = []
    for budget in args.budgets:
        scheduler = OmniBoostScheduler(
            system.estimator, config=MCTSConfig(budget=budget, seed=17)
        )
        decision = scheduler.schedule(mix)
        result = system.simulator.simulate(mix.models, decision.mapping)
        rows.append(
            [
                budget,
                f"{result.average_throughput:.2f}",
                f"{result.average_throughput / baseline:.2f}",
                f"{cost_model.decision_time(decision.cost):.1f}",
                f"{decision.wall_time_s:.1f}",
            ]
        )
    print(f"Mix: {', '.join(mix.model_names)}; baseline T = {baseline:.2f} inf/s\n")
    print(
        format_table(
            [
                "budget",
                "T (inf/s)",
                "normalized",
                "modeled board decision (s)",
                "host wall (s)",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
