#!/usr/bin/env python3
"""Sweep the MCTS computational budget (the paper's Section V-B knob).

The paper fixes the budget at 500 iterations as the best trade-off
between decision latency (~30 s on-device) and solution quality, noting
"budgetary constraints can be adjusted for any use-case scenario".
This example shows the trade-off curve: measured throughput of the
chosen mapping and estimator-query count versus budget.
"""

import argparse

from repro import SchedulingService, SystemBuilder, Workload
from repro.core import MCTSConfig
from repro.evaluation import RuntimeCostModel, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budgets",
        type=int,
        nargs="*",
        default=[25, 50, 100, 250, 500, 1000],
    )
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    args = parser.parse_args()

    # The budget is a per-request knob on the service: one builder, one
    # trained estimator, one scheduler -- each request overrides only
    # the MCTS iteration budget.
    builder = (
        SystemBuilder()
        .with_estimator(num_training_samples=args.samples, epochs=args.epochs)
        .with_mcts_config(MCTSConfig(seed=17))
    )
    service = SchedulingService(builder)
    mix = Workload.from_names(["vgg19", "resnet50", "inception_v3", "alexnet"])
    baseline = builder.simulator.simulate(
        mix.models, builder.build_scheduler("baseline").schedule(mix).mapping
    ).average_throughput

    cost_model = RuntimeCostModel()
    rows = []
    for budget in args.budgets:
        response = service.submit(mix, budget=budget)
        result = builder.simulator.simulate(mix.models, response.mapping)
        rows.append(
            [
                budget,
                f"{result.average_throughput:.2f}",
                f"{result.average_throughput / baseline:.2f}",
                f"{cost_model.decision_time(response.decision.cost):.1f}",
                f"{response.measured_wall_time_s:.1f}",
            ]
        )
    print(f"Mix: {', '.join(mix.model_names)}; baseline T = {baseline:.2f} inf/s\n")
    print(
        format_table(
            [
                "budget",
                "T (inf/s)",
                "normalized",
                "modeled board decision (s)",
                "host wall (s)",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
