#!/usr/bin/env python3
"""Execute a mapping event-by-event and print the device timeline.

The fluid simulator answers "what throughput?", the trace simulator
shows *how*: frames arriving at each DNN, stage tasks queueing on
devices, per-frame latency.  Useful for debugging why a mapping is
slow (watch a device sit idle waiting for an upstream stage).
"""

import argparse

import numpy as np

from repro import Workload, hikey970
from repro.evaluation import format_table
from repro.hw import BIG_CPU_ID, GPU_ID, LITTLE_CPU_ID
from repro.sim import BoardSimulator, Mapping, TraceSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--events", type=int, default=25)
    args = parser.parse_args()

    platform = hikey970()
    mix = Workload.from_names(["alexnet", "mobilenet", "squeezenet"])
    # A 2-stage split for AlexNet, whole-model placements for the rest.
    mapping = Mapping(
        [
            [GPU_ID] * 4 + [BIG_CPU_ID] * 4,
            [LITTLE_CPU_ID] * 28,
            [GPU_ID] * 18,
        ]
    )

    fluid = BoardSimulator(platform).simulate(mix.models, mapping)
    trace = TraceSimulator(platform).run(
        mix.models, mapping, duration_s=args.duration, record_events=True
    )

    print(f"Mix: {', '.join(mix.model_names)}")
    rows = []
    for index, model in enumerate(mix.models):
        rows.append(
            [
                model.name,
                f"{fluid.rates[index]:.2f}",
                f"{trace.rates[index]:.2f}",
                f"{trace.mean_latency(index) * 1000:.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["model", "fluid rate (inf/s)", "trace rate (inf/s)", "latency (ms)"],
            rows,
        )
    )
    print(
        f"\nDevice utilization (trace): "
        f"{np.round(trace.device_utilization, 2).tolist()} "
        "(GPU, big, LITTLE)"
    )
    print(f"\nFirst {args.events} events:")
    print(trace.timeline(max_rows=args.events))


if __name__ == "__main__":
    main()
