#!/usr/bin/env python3
"""Online serving end to end: churn trace in, per-event timeline out.

A deployment rarely schedules one fixed mix: DNNs arrive, live for a
while and leave.  This example replays a named churn scenario (bursty
by default) through ``SchedulingService.run_trace``:

1. a seeded ``ArrivalTrace`` supplies the tenancy dynamics;
2. every arrival/departure triggers a re-search, *warm-started* from
   the previous decision's retained rows (cold fallback when the seed
   is untrustworthy) and early-stopped once the incumbent converges;
3. events sharing a timestamp (bursts) are re-planned concurrently
   with their estimator evaluations pooled into shared batches;
4. the run emits a ``TimelineReport`` — per-event mode, score,
   estimator cost, re-schedule latency — optionally written as JSON.

Compare ``--no-warm`` (cold search per event) against the default to
see what warm starting saves; ``benchmarks/test_perf_online.py`` gates
that saving at >= 2x.
"""

import argparse
import os

from repro import OnlineConfig, SchedulingService, SystemBuilder
from repro.core import MCTSConfig
from repro.evaluation import write_timeline_json
from repro.workloads import churn_scenario, churn_scenario_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", default="bursty", choices=churn_scenario_names()
    )
    parser.add_argument("--events", type=int, default=30)
    parser.add_argument("--trace-seed", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument(
        "--budget", type=int, default=200, help="MCTS budget per re-search"
    )
    parser.add_argument("--warm-patience", type=int, default=60)
    parser.add_argument(
        "--no-warm", action="store_true", help="cold search on every event"
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default="",
        help="load estimator weights instead of training",
    )
    parser.add_argument(
        "--report", type=str, default="", help="write TimelineReport JSON here"
    )
    args = parser.parse_args()

    trace = churn_scenario(args.scenario, seed=args.trace_seed).truncated(
        args.events
    )
    print(
        f"scenario {args.scenario!r}: {len(trace)} events over "
        f"{trace.horizon_s:.1f}s, peak {trace.max_concurrency} tenants\n"
    )

    builder = SystemBuilder(seed=args.seed).with_mcts_config(
        MCTSConfig(budget=args.budget, seed=args.seed + 5)
    )
    if args.checkpoint and os.path.exists(args.checkpoint):
        builder.from_checkpoint(args.checkpoint)
        print(f"loaded estimator checkpoint {args.checkpoint}")
    else:
        builder.with_estimator(
            num_training_samples=args.samples, epochs=args.epochs
        )

    service = SchedulingService(builder)
    report = service.run_trace(
        trace,
        online=OnlineConfig(
            warm=not args.no_warm, warm_patience=args.warm_patience
        ),
    )

    print(report.event_table())
    print(f"\n{report.summary()}")
    stats = service.stats()
    print(
        f"service: {stats.trace_reschedules} re-schedules "
        f"({stats.trace_warm_reschedules} warm), mean pooled batch "
        f"{stats.mean_pooled_batch_size:.1f}, "
        f"{stats.estimator_queries_actual:.0f}/{stats.estimator_queries:.0f} "
        "estimator queries paid/budgeted"
    )
    for priority, latency in sorted(report.per_priority_latency().items()):
        print(f"  priority {priority}: mean re-schedule {latency * 1000:.0f}ms")

    if args.report:
        write_timeline_json(report, args.report)
        print(f"\ntimeline report written to {args.report}")


if __name__ == "__main__":
    main()
