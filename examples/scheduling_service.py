#!/usr/bin/env python3
"""The service-oriented API end to end: builder, registry, request stream.

OmniBoost's headline property -- one trained estimator answers every
workload with no per-mix retraining -- makes it a natural long-lived
*service*.  This example shows the three layers of the serving API:

1. a lazy ``SystemBuilder`` (nothing profiles or trains until the
   first request needs it);
2. the scheduler registry -- a custom scheduler registered by name
   joins the comparison set automatically;
3. a ``SchedulingService`` answering a batch of requests: repeated
   mixes (order-insensitive) come from the decision cache, distinct
   mixes run their MCTS searches concurrently with estimator leaf
   evaluations pooled across requests.

The batch is answered identically to a sequential per-request loop --
pooling is an amortization, never a behavioural change.
"""

import argparse

from repro import (
    ScheduleRequest,
    SchedulingService,
    SystemBuilder,
    Workload,
    register_scheduler,
    unregister_scheduler,
)
from repro.baselines.gpu_only import SingleDeviceScheduler
from repro.evaluation import format_table
from repro.hw import BIG_CPU_ID


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--samples", type=int, default=300)
    args = parser.parse_args()

    # Layer 2: a user scheduler, registered by name.  The factory gets
    # the builder and pulls only the artifacts it needs (here: just the
    # platform -- registering this never trains an estimator).
    register_scheduler(
        "big-cpu", lambda builder: SingleDeviceScheduler(BIG_CPU_ID, name="big-cpu")
    )

    try:
        # Layer 1: lazy assembly.  Constructing builder + service does
        # no design-time work at all.
        builder = SystemBuilder().with_estimator(
            num_training_samples=args.samples, epochs=args.epochs
        )
        service = SchedulingService(builder)
        print(f"built stages before first request: {builder.built_stages or '(none)'}")

        # Layer 3: a request stream with duplicates and priorities.
        mixes = [
            ["vgg19", "resnet50", "inception_v3"],
            ["alexnet", "mobilenet", "squeezenet"],
            ["resnet50", "vgg19", "inception_v3"],   # permuted duplicate
            ["vgg16", "resnet34", "mobilenet"],
            ["alexnet", "mobilenet", "squeezenet"],  # exact duplicate
        ]
        requests = [
            ScheduleRequest(
                workload=Workload.from_names(names),
                priority=1 if "vgg19" in names else 0,
                request_id=f"req-{index}",
            )
            for index, names in enumerate(mixes)
        ]
        responses = service.schedule_many(requests)
        print(f"built stages after the batch:     {builder.built_stages}\n")

        rows = []
        for request, response in zip(requests, responses):
            measured = builder.simulator.measure(
                request.workload.models, response.mapping
            )
            rows.append(
                [
                    response.request_id,
                    "+".join(request.workload.model_names),
                    response.cache_status,
                    f"{measured.average_throughput:.2f}",
                    f"{response.measured_wall_time_s * 1000:.0f}",
                ]
            )
        print(
            format_table(
                ["request", "mix", "cache", "T (inf/s)", "latency ms"], rows
            )
        )

        stats = service.stats()
        print(
            f"\nservice stats: {stats.requests_served} requests, "
            f"hit rate {stats.cache_hit_rate:.0%}, "
            f"{stats.pooled_eval_batches} pooled estimator batches "
            f"(mean size {stats.mean_pooled_batch_size:.1f}), "
            f"{stats.estimator_queries_actual:.0f}/{stats.estimator_queries:.0f} "
            "estimator queries paid/budgeted"
        )

        # The registered scheduler is now part of every built system.
        system = builder.build()
        print(
            "\nregistered comparison set: "
            + ", ".join(s.name for s in system.schedulers)
        )
    finally:
        unregister_scheduler("big-cpu")


if __name__ == "__main__":
    main()
