#!/usr/bin/env python3
"""Extend OmniBoost with a custom DNN (paper contribution iii).

The paper stresses that the framework is "robust to new DNN models
added on top of the existing dataset": adding a network only requires
profiling its kernels and rebuilding the embedding tensor -- no
scheduler changes, and (thanks to kernel-level granularity) the
estimator generalizes to the new columns after a short fine-tune.

This example registers a compact edge-detection CNN, rebuilds the
design-time artifacts with the twelve-model dataset and schedules a
mix containing the new network.
"""

import numpy as np

from repro import Workload, hikey970
from repro.core import MCTSConfig, OmniBoostScheduler
from repro.estimator import (
    EmbeddingSpace,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
)
from repro.evaluation import format_table
from repro.models import (
    MODEL_NAMES,
    ModelBuilder,
    TensorShape,
    available_models,
    build_all_models,
    register_model,
)
from repro.sim import BoardSimulator, KernelProfiler, Mapping
from repro.workloads import WorkloadGenerator


def edgenet():
    """A small VGG-style network for 720p edge detection."""
    b = ModelBuilder("edgenet", TensorShape(3, 180, 320))
    b.conv("conv1", 16, kernel=3, pool=(2, 2))
    b.conv("conv2", 32, kernel=3, pool=(2, 2))
    b.conv("conv3", 64, kernel=3)
    b.conv("conv4", 64, kernel=3, pool=(2, 2))
    b.conv("conv5", 32, kernel=1, padding=0)
    b.fc("head", 10, softmax=True)
    return b.build()


def main() -> None:
    if "edgenet" not in available_models():
        register_model("edgenet", edgenet)
    dataset_names = list(MODEL_NAMES) + ["edgenet"]

    platform = hikey970()
    simulator = BoardSimulator(platform)
    models = build_all_models(dataset_names)
    print(f"Dataset now holds {len(models)} models "
          f"(edgenet: {models[-1].num_layers} units, "
          f"{models[-1].total_flops / 1e9:.2f} GFLOPs)")

    # Re-run the design-time pipeline over the extended dataset.
    table = KernelProfiler(platform).profile(models, seed=0)
    embedding = EmbeddingSpace(table, dataset_names)
    estimator = ThroughputEstimator(embedding, rng=np.random.default_rng(1))
    generator = WorkloadGenerator(model_names=dataset_names, seed=2)
    dataset = EstimatorDatasetBuilder(simulator, generator, estimator).build(
        num_samples=300, measurement_seed=3
    )
    history = EstimatorTrainer(estimator).train(
        dataset, epochs=20, train_size=240, seed=4
    )
    print(f"Estimator retrained: final val loss {history.final_val_loss:.3f}")

    mix = Workload.from_names(["edgenet", "vgg16", "mobilenet"])
    scheduler = OmniBoostScheduler(estimator, config=MCTSConfig(seed=5))
    decision = scheduler.schedule(mix)
    result = simulator.measure(mix.models, decision.mapping)
    baseline = simulator.measure(
        mix.models, Mapping.single_device(mix.models, 0)
    )

    rows = [
        [model.name, "".join(str(d) for d in row), f"{result.rates[i]:.2f}"]
        for i, (model, row) in enumerate(zip(mix.models, decision.mapping.assignments))
    ]
    print()
    print(format_table(["model", "mapping (device/layer)", "rate (inf/s)"], rows))
    print(f"\nMix throughput: {result.average_throughput:.2f} inf/s "
          f"(GPU-only baseline: {baseline.average_throughput:.2f})")


if __name__ == "__main__":
    main()
