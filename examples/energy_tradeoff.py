#!/usr/bin/env python3
"""Energy-aware scheduling: the pluggable-objective extension.

The paper's OmniBoost maximizes throughput.  On a battery-powered
board the interesting frontier is throughput *versus* board power, and
the framework's reward is the intended extension point: this example
schedules the same mix under (i) the paper's throughput objective,
(ii) predicted inferences-per-joule, and (iii) a sweep of weighted
throughput-minus-power objectives, then prints the measured frontier.

Every variant uses the same trained estimator and the same MCTS budget
-- swapping the objective costs nothing at decision time.
"""

import argparse

from repro import SchedulingService, SystemBuilder, Workload
from repro.core import EnergyAwareObjective, MCTSConfig
from repro.evaluation import format_table, pareto_front
from repro.hw import hikey970_power


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mix",
        nargs="*",
        default=["vgg19", "resnet50", "inception_v3", "alexnet"],
    )
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument(
        "--tradeoffs", type=float, nargs="*", default=[0.05, 0.2, 1.0]
    )
    args = parser.parse_args()

    builder = (
        SystemBuilder()
        .with_estimator(num_training_samples=args.samples, epochs=args.epochs)
        .with_mcts_config(MCTSConfig(seed=17))
    )
    service = SchedulingService(builder)
    power_model = hikey970_power()
    mix = Workload.from_names(args.mix)

    variants = [("throughput (paper)", None)]
    variants.append(
        (
            "inferences/joule",
            EnergyAwareObjective(
                power_model, builder.platform, builder.latency_table
            ),
        )
    )
    for tradeoff in args.tradeoffs:
        variants.append(
            (
                f"weighted λ={tradeoff:g}",
                EnergyAwareObjective(
                    power_model,
                    builder.platform,
                    builder.latency_table,
                    mode="weighted",
                    tradeoff_w=tradeoff,
                ),
            )
        )

    operating_points = []
    rows = []
    for label, objective in variants:
        # The objective is a per-request knob; every variant reuses the
        # same trained estimator through the same service.
        response = service.submit(mix, objective=objective)
        measured = builder.simulator.simulate(mix.models, response.mapping)
        report = power_model.report(builder.platform, measured)
        operating_points.append(
            (measured.average_throughput, report.total_w)
        )
        rows.append(
            [
                label,
                f"{measured.average_throughput:.2f}",
                f"{report.total_w:.2f}",
                f"{report.inferences_per_joule:.3f}",
                f"{report.energy_per_inference_j:.2f}",
            ]
        )

    # Mark the non-dominated (throughput up, power down) points.
    front = set(pareto_front(operating_points, maximize=(True, False)))
    for index, row in enumerate(rows):
        row[0] = ("* " if index in front else "  ") + row[0]

    print(f"\nMix: {', '.join(mix.model_names)}")
    print(f"Board idle floor: {power_model.idle_floor_w(builder.platform):.2f} W")
    print("(* = Pareto-optimal operating point: throughput vs power)\n")
    print(
        format_table(
            ["objective", "T (inf/s)", "power (W)", "inf/J", "J/inf"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
