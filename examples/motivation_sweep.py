#!/usr/bin/env python3
"""Reproduce the paper's motivational experiment (Section II, Fig. 1).

Four concurrent DNNs (AlexNet, MobileNet, VGG-19, SqueezeNet) are run
under 200 random layer-split set-ups; throughput is normalized to the
all-on-GPU baseline.  The paper observes that although the baseline
beats most random set-ups, the best ones reach ~+60%.

Also prints the design-space arithmetic the paper quotes:
C(84, 3) ~ 95,000 combinations for this example alone.
"""

import argparse

import numpy as np

from repro import Workload, hikey970
from repro.evaluation import (
    format_table,
    paper_combination_estimate,
    total_contiguous_mappings,
)
from repro.hw import BIG_CPU_ID, GPU_ID
from repro.sim import BoardSimulator, Mapping
from repro.workloads.generator import random_two_stage_mapping


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--setups", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = hikey970()
    simulator = BoardSimulator(platform)
    mix = Workload.from_names(["alexnet", "mobilenet", "vgg19", "squeezenet"])

    # The motivational experiment runs each DNN continuously (benchmark
    # loop), so demand is unbounded rather than frame-rate capped.
    unbounded = [1e9] * mix.num_dnns
    baseline = simulator.simulate(
        mix.models, Mapping.single_device(mix.models, GPU_ID),
        offered_rates=unbounded,
    ).average_throughput
    print(f"Baseline (all DNNs on the GPU): {baseline:.2f} inferences/s\n")

    rng = np.random.default_rng(args.seed)
    normalized = []
    for _ in range(args.setups):
        mapping = random_two_stage_mapping(
            mix.models, rng, devices=(GPU_ID, BIG_CPU_ID)
        )
        result = simulator.measure(
            mix.models, mapping, rng=rng, offered_rates=unbounded
        )
        normalized.append(result.average_throughput / baseline)
    normalized = np.array(normalized)

    print(f"{args.setups} random split set-ups, normalized to the baseline:")
    rows = [
        ["best", f"{normalized.max():.2f}"],
        ["p90", f"{np.percentile(normalized, 90):.2f}"],
        ["median", f"{np.median(normalized):.2f}"],
        ["worst", f"{normalized.min():.2f}"],
        ["share beating baseline", f"{(normalized > 1.0).mean() * 100:.0f}%"],
    ]
    print(format_table(["statistic", "normalized throughput"], rows))

    print("\nASCII histogram (x = set-ups, normalized throughput buckets):")
    edges = np.arange(0.0, max(2.0, normalized.max()) + 0.2, 0.2)
    counts, _ = np.histogram(normalized, bins=edges)
    for low, high, count in zip(edges, edges[1:], counts):
        bar = "#" * count
        print(f"  {low:4.1f}-{high:4.1f} | {bar}")

    total_layers = mix.total_layers
    print(
        f"\nDesign space: {total_layers} total layers; the paper's estimate "
        f"C({total_layers}, 3) = {paper_combination_estimate(total_layers, 3):,}"
    )
    exact = total_contiguous_mappings(mix.models, 3, 3)
    print(f"Exact stage-capped contiguous mappings of this mix: {exact:,}")


if __name__ == "__main__":
    main()
