#!/usr/bin/env python3
"""Regenerate every paper figure as an SVG file.

Writes ``figures/fig1_motivation.svg`` (the 200-random-set-up
motivational sweep), ``figures/fig4_training.svg`` (estimator loss
curves) and ``figures/fig5{a,b,c}_mixes.svg`` (normalized-throughput
comparisons for 3/4/5-DNN mixes) using the pure-Python SVG charts in
:mod:`repro.evaluation.charts`.

The full regeneration trains the estimator at design time and runs all
four schedulers over fifteen mixes (~minutes); ``--quick`` shrinks the
training campaign and the MCTS budget for a fast smoke run.
"""

import argparse
import os

import numpy as np

from repro import SystemBuilder, Workload
from repro.core import MCTSConfig
from repro.evaluation import (
    BarChart,
    EvaluationHarness,
    LineChart,
    ScatterChart,
)
from repro.hw import BIG_CPU_ID, GPU_ID
from repro.sim import Mapping
from repro.workloads import WorkloadGenerator
from repro.workloads.generator import random_two_stage_mapping

#: Mix seeds matching the benchmark suite (benchmarks/fig5_common.py).
MIX_SEEDS = {3: 101, 4: 202, 5: 303}


def figure1(system, out_dir: str, setups: int, seed: int) -> None:
    mix = Workload.from_names(["alexnet", "mobilenet", "vgg19", "squeezenet"])
    # Continuous benchmark loop (paper Section II): demand unbounded.
    unbounded = [1e9] * mix.num_dnns
    baseline = system.simulator.simulate(
        mix.models,
        Mapping.single_device(mix.models, GPU_ID),
        offered_rates=unbounded,
    ).average_throughput
    rng = np.random.default_rng(seed)
    normalized = []
    for _ in range(setups):
        mapping = random_two_stage_mapping(
            mix.models, rng, devices=(GPU_ID, BIG_CPU_ID)
        )
        measured = system.simulator.measure(
            mix.models, mapping, rng=rng, offered_rates=unbounded
        )
        normalized.append(measured.average_throughput / baseline)
    chart = ScatterChart(
        "Fig. 1 -- normalized throughput of random CPU/GPU splits",
        x_label="set-up",
        y_label="normalized throughput",
    )
    chart.add_series("random split set-ups", list(range(len(normalized))), normalized)
    chart.add_reference_line("all-on-GPU baseline", 1.0)
    path = os.path.join(out_dir, "fig1_motivation.svg")
    chart.save(path)
    print(f"wrote {path} (best {max(normalized):.2f}, worst {min(normalized):.2f})")


def figure4(system, out_dir: str) -> None:
    history = system.training_history
    if history is None:
        print("skipping fig4: system was built with train=False")
        return
    epochs = list(range(1, history.epochs + 1))
    chart = LineChart(
        "Fig. 4 -- throughput estimator training behaviour",
        x_label="epoch",
        y_label="L1 loss",
    )
    chart.add_series("training loss", epochs, history.train_losses)
    chart.add_series("validation loss", epochs, history.val_losses)
    path = os.path.join(out_dir, "fig4_training.svg")
    chart.save(path)
    print(
        f"wrote {path} (train {history.final_train_loss:.3f}, "
        f"val {history.final_val_loss:.3f})"
    )


def figure5(system, out_dir: str, panel: str, mix_size: int, num_mixes: int) -> None:
    generator = WorkloadGenerator(seed=MIX_SEEDS[mix_size])
    mixes = [generator.sample_mix(mix_size) for _ in range(num_mixes)]
    harness = EvaluationHarness(
        system.simulator, system.schedulers, baseline_name="Baseline"
    )
    table = harness.evaluate_mixes(mixes)
    categories = [f"mix-{i + 1}" for i in range(num_mixes)] + ["Average"]
    chart = BarChart(
        f"Fig. 5{panel} -- {mix_size} concurrent DNNs",
        categories=categories,
        y_label="normalized average throughput",
    )
    for scheduler in table.scheduler_names:
        values = table.normalized_series(scheduler)
        values.append(table.average(scheduler))
        chart.add_group(scheduler, values)
    path = os.path.join(out_dir, f"fig5{panel}_mixes.svg")
    chart.save(path)
    print(f"wrote {path} (OmniBoost avg x{table.average('OmniBoost'):.2f})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="figures")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    os.makedirs(args.out, exist_ok=True)
    if args.quick:
        system = (
            SystemBuilder(seed=args.seed)
            .with_estimator(num_training_samples=200, epochs=15)
            .with_mcts_config(MCTSConfig(budget=100, seed=5))
            .build()
        )
        setups, num_mixes = 50, 2
    else:
        # Paper defaults: 500 samples / 100 epochs, MCTS budget 500.
        system = SystemBuilder(seed=args.seed).build()
        setups, num_mixes = 200, 5

    figure1(system, args.out, setups, args.seed)
    figure4(system, args.out)
    for panel, mix_size in (("a", 3), ("b", 4), ("c", 5)):
        figure5(system, args.out, panel, mix_size, num_mixes)


if __name__ == "__main__":
    main()
