#!/usr/bin/env python3
"""Schedule realistic application scenarios (AR, camera, drone...).

The paper motivates multi-DNN scheduling with applications that run
several networks at different frame rates.  This example evaluates the
named scenario presets: for each, it compares the GPU-only baseline
with OmniBoost under the scenario's per-network offered rates and
reports how much of the demanded frame rate each approach delivers.
"""

import argparse

import numpy as np

from repro import SchedulingService, SystemBuilder
from repro.evaluation import format_table
from repro.workloads import SCENARIOS, scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "names",
        nargs="*",
        default=list(SCENARIOS),
        help=f"scenarios to run (default: all of {', '.join(SCENARIOS)})",
    )
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--samples", type=int, default=300)
    args = parser.parse_args()

    builder = SystemBuilder().with_estimator(
        num_training_samples=args.samples, epochs=args.epochs
    )
    # Scenarios arrive as a request stream: the service runs their MCTS
    # searches concurrently, pooling estimator evaluations, and dedupes
    # any scenarios sharing a mix.
    service = SchedulingService(builder)
    baseline = builder.build_scheduler("baseline")

    presets = [scenario(name) for name in args.names]
    responses = service.schedule_many([preset.workload for preset in presets])

    rows = []
    for name, preset, omni in zip(args.names, presets, responses):
        mix = preset.workload
        rates = preset.offered_rates

        base_result = builder.simulator.simulate(
            mix.models, baseline.schedule(mix).mapping, offered_rates=rates
        )
        omni_result = builder.simulator.simulate(
            mix.models, omni.mapping, offered_rates=rates
        )

        demanded = np.asarray(rates)
        base_served = float((base_result.rates / demanded).mean() * 100)
        omni_served = float((omni_result.rates / demanded).mean() * 100)
        rows.append(
            [
                name,
                mix.num_dnns,
                f"{demanded.sum():.0f}",
                f"{base_served:.0f}%",
                f"{omni_served:.0f}%",
            ]
        )
        print(f"{name}: {preset.description}")
    print()
    print(
        format_table(
            [
                "scenario",
                "DNNs",
                "total demand (inf/s)",
                "baseline served",
                "OmniBoost served",
            ],
            rows,
        )
    )
    print("\n'served' = mean fraction of each network's demanded frame rate "
          "actually delivered.")


if __name__ == "__main__":
    main()
