#!/usr/bin/env python3
"""Train the throughput estimator and print the Fig.-4 loss curves.

Runs the paper's design-time pipeline: kernel-profile the eleven-model
zoo on the (simulated) board, collect 500 random multi-DNN workloads,
train the 20,044-parameter ResNet9 regressor with L1 loss for 100
epochs on a 400/100 split, and print the training/validation series.
Optionally saves a reusable checkpoint.
"""

import argparse

import numpy as np

from repro import hikey970
from repro.estimator import (
    EmbeddingSpace,
    EstimatorDatasetBuilder,
    EstimatorTrainer,
    ThroughputEstimator,
)
from repro.evaluation import format_table
from repro.models import MODEL_NAMES, build_all_models
from repro.sim import BoardSimulator, KernelProfiler
from repro.workloads import WorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--epochs", type=int, default=100)
    parser.add_argument("--loss", choices=["l1", "l2"], default="l1")
    parser.add_argument("--checkpoint", type=str, default="")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = hikey970()
    simulator = BoardSimulator(platform)
    models = build_all_models()

    print("Kernel-based exploration (paper Eq. 1-3)...")
    table = KernelProfiler(platform).profile(models, seed=args.seed)
    embedding = EmbeddingSpace(table, MODEL_NAMES)
    print(f"Distributed embedding tensor: {embedding.input_shape}")

    estimator = ThroughputEstimator(
        embedding, rng=np.random.default_rng(args.seed + 1)
    )
    print(f"Estimator: {estimator.num_parameters} trainable parameters")

    generator = WorkloadGenerator(seed=args.seed + 2)
    builder = EstimatorDatasetBuilder(simulator, generator, estimator)
    print(f"Measuring {args.samples} random workloads on the board...")
    dataset = builder.build(num_samples=args.samples, measurement_seed=args.seed + 3)

    trainer = EstimatorTrainer(estimator, loss=args.loss)
    train_size = int(round(args.samples * 0.8))
    history = trainer.train(
        dataset, epochs=args.epochs, train_size=train_size, seed=args.seed + 4
    )

    stride = max(1, args.epochs // 20)
    rows = [
        [epoch, f"{train:.4f}", f"{val:.4f}"]
        for epoch, train, val in history.rows()[::stride]
    ]
    print()
    print(format_table(["epoch", "train loss", "val loss"], rows))
    print(
        f"\nFinal: train {history.final_train_loss:.4f}, "
        f"val {history.final_val_loss:.4f} "
        f"(best {history.best_val_loss:.4f}) in {history.wall_time_s:.0f}s"
    )

    if args.checkpoint:
        estimator.save(args.checkpoint)
        print(f"Checkpoint written to {args.checkpoint}")


if __name__ == "__main__":
    main()
